"""``DetKDecomp`` — the polynomial ``Check(HD, k)`` algorithm (Section 3.4).

This is a Python re-implementation of the backtracking hypertree decomposition
algorithm of Gottlob & Samer (the paper's ``NewDetKDecomp`` base layer).  For
a fixed ``k`` it constructs an HD top-down:

* the state of the search is a pair ``(component, connector)`` where
  ``component`` is a set of edge names still to be decomposed and
  ``connector`` the vertices shared with the parent bag;
* at each node it guesses a separator ``λ ⊆ E(H)`` with ``|λ| ≤ k``
  containing **at least one component edge** (this is the classical
  progress/normal-form restriction) and covering the connector;
* the bag is forced to ``B(λ) ∩ V(component)`` — the "special condition"
  make-safe choice that guarantees polynomial time at the price of possibly
  missing lower-width GHDs;
* the ``[B_u]``-components of the current component become the child search
  states, and failures are memoised on ``(component, connector)``.

The optional ``bag_filter`` hook rejects candidate bags; ``FracImproveHD``
(Section 6.5) uses it to only accept bags whose *fractional* cover weight
stays below ``k'``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.components import components, vertices_of
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.utils.deadline import Deadline

__all__ = ["DetKDecomp", "check_hd"]

BagFilter = Callable[[frozenset[str]], bool]


class DetKDecomp:
    """Deterministic ``Check(HD, k)`` search for one hypergraph.

    Parameters
    ----------
    hypergraph:
        The input hypergraph ``H``.
    k:
        The width bound (``k >= 1``).
    deadline:
        Cooperative timeout; :class:`~repro.errors.DeadlineExceeded` is raised
        from within the search when it expires.
    bag_filter:
        Optional predicate on candidate bags; bags failing it are skipped.
        Must be monotone in the sense that rejecting a bag never hides the
        *only* HD — used by ``FracImproveHD`` where this holds by design.
    heuristic:
        Separator candidate ordering (the paper adds such heuristics on top
        of the basic algorithm): ``"coverage"`` (default) tries edges with
        the largest overlap with the current component first, ``"degree"``
        prefers edges with many high-degree vertices, ``"name"`` uses the
        plain lexicographic order.  The verdict never depends on the
        heuristic — only the time to find it does.
    """

    HEURISTICS = ("coverage", "degree", "name")

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        bag_filter: BagFilter | None = None,
        heuristic: str = "coverage",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if heuristic not in self.HEURISTICS:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.bag_filter = bag_filter
        self.heuristic = heuristic
        self._family = dict(hypergraph.edges)
        self._degree = {
            v: len(hypergraph.incident_edges(v)) for v in hypergraph.vertices
        }
        self._failures: set[tuple[frozenset[str], frozenset[str]]] = set()

    def _order_key(self, comp_vertices: frozenset[str]):
        """The candidate ordering selected by ``self.heuristic``."""
        if self.heuristic == "coverage":
            return lambda n: (-len(self._family[n] & comp_vertices), n)
        if self.heuristic == "degree":
            return lambda n: (
                -sum(self._degree[v] for v in self._family[n] & comp_vertices),
                n,
            )
        return lambda n: n  # "name"

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return an HD of width ≤ k, or ``None`` when none exists."""
        if not self._family:
            root = DecompositionNode(frozenset(), {})
            return Decomposition(self.hypergraph, root, kind="HD")

        roots: list[DecompositionNode] = []
        for comp in components(self._family, frozenset()):
            node = self._decompose(comp, frozenset())
            if node is None:
                return None
            roots.append(node)

        if len(roots) == 1:
            root = roots[0]
        else:
            # Disconnected hypergraph: join the per-component HDs below an
            # empty auxiliary root.  All conditions hold trivially because the
            # components share no vertices.
            root = DecompositionNode(frozenset(), {}, roots)
        return Decomposition(self.hypergraph, root, kind="HD")

    # ---------------------------------------------------------------- search

    def _decompose(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> DecompositionNode | None:
        """Decompose one ``(component, connector)`` state; ``None`` on failure."""
        self.deadline.check()
        key = (comp, conn)
        if key in self._failures:
            return None

        comp_vertices = vertices_of(self._family, comp)

        # Base case: the whole component fits in a single λ-label.
        if len(comp) <= self.k:
            bag = comp_vertices
            if self.bag_filter is None or self.bag_filter(bag):
                return DecompositionNode(bag, {name: 1.0 for name in comp})

        for separator in self._separators(comp, conn):
            self.deadline.check()
            bag = vertices_of(self._family, separator) & comp_vertices
            if not conn <= bag:
                continue
            if self.bag_filter is not None and not self.bag_filter(bag):
                continue

            sub_family = {name: self._family[name] for name in comp}
            child_states = components(sub_family, bag)
            children: list[DecompositionNode] = []
            success = True
            for child_comp in child_states:
                child_conn = vertices_of(self._family, child_comp) & bag
                child = self._decompose(child_comp, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                return DecompositionNode(
                    bag, {name: 1.0 for name in separator}, children
                )

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _separators(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> Iterator[tuple[str, ...]]:
        """Enumerate candidate λ-labels for the current state.

        Candidates contain at least one *inner* edge (an edge of the
        component) plus up to ``k - 1`` further edges intersecting the
        component, and must jointly cover the connector.  Edges are ordered
        by decreasing overlap with the component — the paper's heuristic of
        trying "promising" covers first.
        """
        comp_vertices = vertices_of(self._family, comp)
        order_key = self._order_key(comp_vertices)
        inner = sorted(comp, key=order_key)
        outer = sorted(
            (
                name
                for name, edge in self._family.items()
                if name not in comp and edge & comp_vertices
            ),
            key=order_key,
        )
        yield from covering_combinations(
            self._family, inner, outer, conn, self.k, self.deadline,
            require_primary=True,
        )


def covering_combinations(
    family: dict[str, frozenset[str]],
    primary: list[str],
    secondary: list[str],
    conn: frozenset[str],
    k: int,
    deadline: Deadline,
    require_primary: bool = True,
) -> Iterator[tuple[str, ...]]:
    """Yield all ≤k-subsets of ``primary + secondary`` whose union covers ``conn``.

    With ``require_primary`` the subsets must contain at least one primary
    edge — ``DetKDecomp`` uses this for the "≥1 component edge" progress rule
    and ``LocalBIP``/``BalSep`` for their "≥1 subedge" second phase.  The
    enumeration walks the candidate list recursively, tracking the still
    uncovered connector vertices, and prunes branches that cannot cover the
    remainder with the slots left.
    """
    candidates = primary + secondary
    n_primary = len(primary)
    if not candidates or (require_primary and not primary):
        return
    max_gain = [len(family[name] & conn) for name in candidates]
    # suffix_max[i] = max coverage gain of any candidate at index >= i
    suffix_max = [0] * (len(candidates) + 1)
    for i in range(len(candidates) - 1, -1, -1):
        suffix_max[i] = max(suffix_max[i + 1], max_gain[i])

    chosen: list[str] = []

    def recurse(
        start: int, uncovered: frozenset[str], has_primary: bool
    ) -> Iterator[tuple[str, ...]]:
        deadline.check()
        if chosen and has_primary and not uncovered:
            yield tuple(chosen)
        if len(chosen) == k:
            return
        slots = k - len(chosen)
        for i in range(start, len(candidates)):
            if not has_primary and i >= n_primary:
                return  # no primary edge can be added any more
            # Prune: remaining slots cannot cover the connector remainder.
            if uncovered and suffix_max[i] * slots < len(uncovered):
                continue
            name = candidates[i]
            chosen.append(name)
            yield from recurse(
                i + 1, uncovered - family[name], has_primary or i < n_primary
            )
            chosen.pop()

    yield from recurse(0, conn, not require_primary)


def check_hd(
    hypergraph: Hypergraph, k: int, deadline: Deadline | None = None
) -> Decomposition | None:
    """Solve ``Check(HD, k)``: an HD of width ≤ k, or ``None``.

    Convenience wrapper around :class:`DetKDecomp`.
    """
    return DetKDecomp(hypergraph, k, deadline=deadline).decompose()
