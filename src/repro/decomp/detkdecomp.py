"""``DetKDecomp`` — the polynomial ``Check(HD, k)`` algorithm (Section 3.4).

This is a Python re-implementation of the backtracking hypertree decomposition
algorithm of Gottlob & Samer (the paper's ``NewDetKDecomp`` base layer).  For
a fixed ``k`` it constructs an HD top-down:

* the state of the search is a pair ``(component, connector)`` where
  ``component`` is a set of edges still to be decomposed and ``connector``
  the vertices shared with the parent bag;
* at each node it guesses a separator ``λ ⊆ E(H)`` with ``|λ| ≤ k``
  containing **at least one component edge** (this is the classical
  progress/normal-form restriction) and covering the connector;
* the bag is forced to ``B(λ) ∩ V(component)`` — the "special condition"
  make-safe choice that guarantees polynomial time at the price of possibly
  missing lower-width GHDs;
* the ``[B_u]``-components of the current component become the child search
  states, and failures are memoised on ``(component, connector)``.

The search runs entirely on the integer-bitset kernel
(:mod:`repro.core.bitset`): components and connectors are int masks, the
failure memo keys are ``(component_mask, connector_mask)`` pairs, and vertex
names only reappear at the :class:`DecompositionNode` boundary.  The original
frozenset implementation survives as
:class:`repro.decomp.reference.ReferenceDetKDecomp` for benchmarking and
differential testing.

The optional ``bag_filter`` hook rejects candidate bags (it still receives
the bag as a ``frozenset`` of vertex names — the conversion happens at this
boundary only when a filter is installed); ``FracImproveHD`` (Section 6.5)
uses it to only accept bags whose *fractional* cover weight stays below
``k'``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.bitset import (
    ComponentCache,
    HypergraphView,
    iter_bits,
    mask_components,
    mask_components_from,
    mask_covering_combinations,
)
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.perf import counters
from repro.utils.deadline import Deadline

__all__ = ["DetKDecomp", "check_hd", "covering_combinations"]

BagFilter = Callable[[frozenset[str]], bool]


class DetKDecomp:
    """Deterministic ``Check(HD, k)`` search for one hypergraph.

    Parameters
    ----------
    hypergraph:
        The input hypergraph ``H``.
    k:
        The width bound (``k >= 1``).
    deadline:
        Cooperative timeout; :class:`~repro.errors.DeadlineExceeded` is raised
        from within the search when it expires.
    bag_filter:
        Optional predicate on candidate bags (as vertex-name frozensets);
        bags failing it are skipped.  Must be monotone in the sense that
        rejecting a bag never hides the *only* HD — used by ``FracImproveHD``
        where this holds by design.
    heuristic:
        Separator candidate ordering (the paper adds such heuristics on top
        of the basic algorithm): ``"coverage"`` (default) tries edges with
        the largest overlap with the current component first, ``"degree"``
        prefers edges with many high-degree vertices, ``"name"`` uses the
        plain lexicographic order.  The verdict never depends on the
        heuristic — only the time to find it does.
    """

    HEURISTICS = ("coverage", "degree", "name")

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        bag_filter: BagFilter | None = None,
        heuristic: str = "coverage",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if heuristic not in self.HEURISTICS:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.bag_filter = bag_filter
        self.heuristic = heuristic
        self._view = HypergraphView.of(hypergraph)
        self._masks = self._view.edge_masks
        self._failures: set[tuple[int, int]] = set()
        self._comps = ComponentCache(self._view)

    # ------------------------------------------------------------- plumbing

    def _order_key(self, comp_vertices: int):
        """The candidate ordering selected by ``self.heuristic``.

        Keys take edge *indices*.  Ties break on the edge index (candidate
        lists are generated in ascending index order and Python's sort is
        stable), which is deterministic; the verdict never depends on the
        order anyway.
        """
        masks = self._masks
        if self.heuristic == "coverage":
            return lambda i: -(masks[i] & comp_vertices).bit_count()
        if self.heuristic == "degree":
            view = self._view
            return lambda i: -sum(
                view.degree(b) for b in iter_bits(masks[i] & comp_vertices)
            )
        names = self._view.edge_names
        return lambda i: names[i]  # "name"

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return an HD of width ≤ k, or ``None`` when none exists."""
        if not self._masks:
            root = DecompositionNode(frozenset(), {})
            return Decomposition(self.hypergraph, root, kind="HD")

        roots: list[DecompositionNode] = []
        for comp, _ in mask_components(self._masks, 0):
            node = self._decompose(comp, 0)
            if node is None:
                return None
            roots.append(node)

        if len(roots) == 1:
            root = roots[0]
        else:
            # Disconnected hypergraph: join the per-component HDs below an
            # empty auxiliary root.  All conditions hold trivially because the
            # components share no vertices.
            root = DecompositionNode(frozenset(), {}, roots)
        return Decomposition(self.hypergraph, root, kind="HD")

    # ---------------------------------------------------------------- search

    def _decompose(self, comp: int, conn: int) -> DecompositionNode | None:
        """Decompose one ``(component, connector)`` state; ``None`` on failure."""
        self.deadline.check()
        key = (comp, conn)
        if key in self._failures:
            return None

        view = self._view
        comp_vertices = self._comps.vertices(comp)

        # Base case: the whole component fits in a single λ-label.
        if comp.bit_count() <= self.k:
            if self.bag_filter is None or self.bag_filter(
                view.vertex_names_of(comp_vertices)
            ):
                return DecompositionNode(
                    view.vertex_names_of(comp_vertices),
                    {view.edge_names[i]: 1.0 for i in iter_bits(comp)},
                )

        candidates, candidate_masks, n_inner = self._candidates(comp, conn, comp_vertices)
        entries = self._comps.entries(comp)
        seen_bags: set[int] = set()
        for combo in mask_covering_combinations(
            candidate_masks, n_inner, conn, self.k, self.deadline,
            require_primary=True,
        ):
            # The effective candidate masks are already intersected with the
            # component's vertices, so their union IS the make-safe bag, and
            # the enumeration has guaranteed connector coverage.
            bag = 0
            for j in combo:
                bag |= candidate_masks[j]
            # Children depend only on the bag, so a bag that already failed
            # at this state fails for every other λ producing it (and the
            # make-safe bag keeps the special condition for any such λ).
            if bag in seen_bags:
                continue
            seen_bags.add(bag)
            if self.bag_filter is not None and not self.bag_filter(
                view.vertex_names_of(bag)
            ):
                continue

            child_states = mask_components_from(entries, bag)
            children: list[DecompositionNode] = []
            success = True
            for child_comp, _ in child_states:
                child_conn = self._comps.vertices(child_comp) & bag
                child = self._decompose(child_comp, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                return DecompositionNode(
                    view.vertex_names_of(bag),
                    {view.edge_names[candidates[j]]: 1.0 for j in combo},
                    children,
                )

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _candidates(
        self, comp: int, conn: int, comp_vertices: int
    ) -> tuple[list[int], list[int], int]:
        """The λ-candidate list for one state: indices, effective masks, #inner.

        Candidates contain at least one *inner* edge (an edge of the
        component) plus up to ``k - 1`` further edges intersecting the
        component, and must jointly cover the connector.  Edges are ordered
        by decreasing overlap with the component — the paper's heuristic of
        trying "promising" covers first.

        Only a candidate's intersection with the component's vertices ever
        matters (bag, connector coverage and child components are all
        intersected with them), so candidates sharing an *effective mask*
        are interchangeable: one representative is kept per effective mask,
        inner edges first (they also satisfy the progress rule).
        """
        masks = self._masks
        order_key = self._order_key(comp_vertices)
        inner = sorted(iter_bits(comp), key=order_key)
        outer = sorted(
            (
                i
                for i in iter_bits(self._view.all_edges & ~comp)
                if masks[i] & comp_vertices
            ),
            key=order_key,
        )
        seen_effective: set[int] = set()
        candidates: list[int] = []
        candidate_masks: list[int] = []
        for i in inner:
            effective = masks[i]  # inner edges lie inside the component
            if effective in seen_effective:
                continue
            seen_effective.add(effective)
            candidates.append(i)
            candidate_masks.append(effective)
        n_inner = len(candidates)
        for i in outer:
            effective = masks[i] & comp_vertices
            if effective in seen_effective:
                continue
            seen_effective.add(effective)
            candidates.append(i)
            candidate_masks.append(effective)
        return candidates, candidate_masks, n_inner


def covering_combinations(
    family: dict[str, frozenset[str]],
    primary: list[str],
    secondary: list[str],
    conn: frozenset[str],
    k: int,
    deadline: Deadline,
    require_primary: bool = True,
) -> Iterator[tuple[str, ...]]:
    """Yield all ≤k-subsets of ``primary + secondary`` whose union covers ``conn``.

    This is the frozenset *reference* enumeration, kept for the reference
    kernel (:mod:`repro.decomp.reference`) and for differential tests; the
    production searches use
    :func:`repro.core.bitset.mask_covering_combinations`.

    With ``require_primary`` the subsets must contain at least one primary
    edge — ``DetKDecomp`` uses this for the "≥1 component edge" progress rule
    and ``LocalBIP``/``BalSep`` for their "≥1 subedge" second phase.  The
    enumeration walks the candidate list recursively, tracking the still
    uncovered connector vertices, and prunes branches that cannot cover the
    remainder with the slots left.
    """
    counters.cover_enumerations += 1
    candidates = primary + secondary
    n_primary = len(primary)
    if not candidates or (require_primary and not primary):
        return
    max_gain = [len(family[name] & conn) for name in candidates]
    # suffix_max[i] = max coverage gain of any candidate at index >= i
    suffix_max = [0] * (len(candidates) + 1)
    for i in range(len(candidates) - 1, -1, -1):
        suffix_max[i] = max(suffix_max[i + 1], max_gain[i])

    chosen: list[str] = []

    def recurse(
        start: int, uncovered: frozenset[str], has_primary: bool
    ) -> Iterator[tuple[str, ...]]:
        deadline.check()
        if chosen and has_primary and not uncovered:
            yield tuple(chosen)
        if len(chosen) == k:
            return
        slots = k - len(chosen)
        for i in range(start, len(candidates)):
            if not has_primary and i >= n_primary:
                return  # no primary edge can be added any more
            # Prune: remaining slots cannot cover the connector remainder.
            if uncovered and suffix_max[i] * slots < len(uncovered):
                continue
            name = candidates[i]
            chosen.append(name)
            yield from recurse(
                i + 1, uncovered - family[name], has_primary or i < n_primary
            )
            chosen.pop()

    yield from recurse(0, conn, not require_primary)


def check_hd(
    hypergraph: Hypergraph, k: int, deadline: Deadline | None = None
) -> Decomposition | None:
    """Solve ``Check(HD, k)``: an HD of width ≤ k, or ``None``.

    Convenience wrapper around :class:`DetKDecomp`.
    """
    return DetKDecomp(hypergraph, k, deadline=deadline).decompose()
