"""Decomposition algorithms: the paper's Section 4 and 6.5 as code.

* :func:`check_hd` / :class:`DetKDecomp` — ``Check(HD, k)``;
* :func:`check_ghd_global_bip` — ``GlobalBIP`` (Algorithm 1);
* :func:`check_ghd_local_bip` — ``LocalBIP`` (Section 4.3);
* :func:`check_ghd_balsep` — ``BalSep`` (Algorithm 2);
* :func:`improve_hd`, :func:`check_frac_improved`,
  :func:`best_fractional_improvement` — fractional improvements (Section 6.5);
* :func:`exact_width`, :func:`timed_check`, :func:`ghd_portfolio` — the
  evaluation drivers behind Figures 4 and Tables 3–6.
"""

from repro.decomp.balsep import BalSep, check_ghd_balsep
from repro.decomp.detkdecomp import DetKDecomp, check_hd
from repro.decomp.driver import (
    NO,
    TIMEOUT,
    YES,
    CheckOutcome,
    WidthResult,
    exact_width,
    ghd_portfolio,
    timed_check,
)
from repro.decomp.fractional import (
    best_fractional_improvement,
    check_frac_improved,
    improve_hd,
)
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.hybrid import HybridBalSep, check_ghd_hybrid
from repro.decomp.localbip import LocalBIP, check_ghd_local_bip


def __getattr__(name: str):
    # Derived from the method registry; resolved lazily (see decomp.driver).
    if name == "GHD_ALGORITHMS":
        from repro.decomp.driver import _portfolio_algorithms

        return _portfolio_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DetKDecomp",
    "check_hd",
    "check_ghd_global_bip",
    "LocalBIP",
    "check_ghd_local_bip",
    "BalSep",
    "check_ghd_balsep",
    "HybridBalSep",
    "check_ghd_hybrid",
    "improve_hd",
    "check_frac_improved",
    "best_fractional_improvement",
    "CheckOutcome",
    "WidthResult",
    "exact_width",
    "timed_check",
    "ghd_portfolio",
    "GHD_ALGORITHMS",
    "YES",
    "NO",
    "TIMEOUT",
]
