"""High-level drivers: exact widths, timed checks, and the algorithm portfolio.

The paper's evaluation protocol (Sections 6.2 and 6.4) runs
``Check(decomposition, k)`` attempts under a wall-clock timeout, records
yes / no / timeout verdicts, determines exact widths by iterating k, and — for
Table 4 — runs all three GHD algorithms "in parallel", stopping at the first
answer.  This module provides those building blocks for the analysis layer.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.decomposition import Decomposition
from repro.core.hypergraph import Hypergraph
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.localbip import check_ghd_local_bip
from repro.errors import DeadlineExceeded, SubedgeLimitError
from repro.utils.deadline import Deadline

__all__ = [
    "CheckOutcome",
    "YES",
    "NO",
    "TIMEOUT",
    "timed_check",
    "exact_width",
    "WidthResult",
    "GHD_ALGORITHMS",
    "ghd_portfolio",
]

#: Verdict labels, matching the paper's figures.
YES = "yes"
NO = "no"
TIMEOUT = "timeout"

CheckFunction = Callable[[Hypergraph, int, Deadline | None], "Decomposition | None"]


@dataclass
class CheckOutcome:
    """Result of one timed ``Check(decomposition, k)`` attempt.

    ``cancelled`` marks an attempt that was killed early because a portfolio
    race was already won — its timeout verdict says nothing about what the
    algorithm would have answered with the full budget, so per-algorithm
    accounting (Table 3) must skip such outcomes.

    ``counters`` and ``spans`` carry the telemetry a worker process shipped
    back with this outcome: the :class:`~repro.perf.KernelCounters` delta
    accrued during the attempt and the finished span records of the worker's
    side of the trace.  Both stay ``None`` on paths that do not collect
    telemetry, and neither participates in equality.
    """

    verdict: str  # YES, NO or TIMEOUT
    seconds: float
    decomposition: Decomposition | None = None
    cancelled: bool = False
    counters: dict | None = field(default=None, compare=False, repr=False)
    spans: list | None = field(default=None, compare=False, repr=False)

    @property
    def answered(self) -> bool:
        return self.verdict in (YES, NO)


def timed_check(
    check: CheckFunction,
    hypergraph: Hypergraph,
    k: int,
    timeout: float | None = None,
) -> CheckOutcome:
    """Run one check attempt under a timeout and record the verdict.

    Subedge-budget exhaustion is treated like a timeout, mirroring the
    paper's handling of ``GlobalBIP`` blow-ups.
    """
    deadline = Deadline(timeout)
    start = time.perf_counter()
    try:
        decomposition = check(hypergraph, k, deadline)
    except (DeadlineExceeded, SubedgeLimitError):
        return CheckOutcome(TIMEOUT, time.perf_counter() - start)
    elapsed = time.perf_counter() - start
    if decomposition is None:
        return CheckOutcome(NO, elapsed)
    return CheckOutcome(YES, elapsed, decomposition)


@dataclass
class WidthResult:
    """Outcome of an exact-width computation by iterating k.

    ``value`` is the exact width when ``exact`` is true; otherwise only the
    bounds are known (``lower`` may be 1 when nothing was refuted, ``upper``
    may be ``None`` when not even the largest k yielded a yes).
    """

    lower: int
    upper: int | None
    decomposition: Decomposition | None
    timings: dict[int, CheckOutcome]

    @property
    def exact(self) -> bool:
        return self.upper is not None and self.lower == self.upper

    @property
    def value(self) -> int | None:
        return self.upper if self.exact else None


def exact_width(
    check: CheckFunction,
    hypergraph: Hypergraph,
    max_k: int,
    timeout: float | None = None,
    runner: "Callable[[CheckFunction, Hypergraph, int, float | None], CheckOutcome] | None" = None,
) -> WidthResult:
    """Iterate ``Check(·, k)`` for k = 1..max_k (the Figure 4 protocol).

    Stops at the first yes-answer; the width is exact when every smaller k
    produced a definite no (rather than a timeout).

    ``runner`` replaces :func:`timed_check` as the executor of each attempt;
    :class:`repro.engine.DecompositionEngine` uses this seam to route the
    per-k checks through its result store and worker pool.
    """
    run = runner or timed_check
    timings: dict[int, CheckOutcome] = {}
    refuted_up_to = 0
    all_no_so_far = True
    for k in range(1, max_k + 1):
        outcome = run(check, hypergraph, k, timeout)
        timings[k] = outcome
        if outcome.verdict == YES:
            lower = refuted_up_to + 1 if all_no_so_far else 1
            return WidthResult(lower, k, outcome.decomposition, timings)
        if outcome.verdict == NO:
            if all_no_so_far:
                refuted_up_to = k
        else:
            all_no_so_far = False
    lower = refuted_up_to + 1
    return WidthResult(lower, None, None, timings)


def _portfolio_algorithms() -> dict[str, CheckFunction]:
    """The raced GHD algorithms (Table 3 order), from the method registry.

    Function-level import: the registry lives in :mod:`repro.engine.methods`
    (which imports this module's check functions lazily), so resolving it at
    call time — never at import time — keeps the layering cycle-free.
    """
    from repro.engine import methods

    return {
        spec.display: spec.check
        for spec in methods.specs()
        if spec.portfolio and spec.check is not None
    }


def __getattr__(name: str):
    # ``GHD_ALGORITHMS`` (the three Section 4 GHD algorithms in Table 3
    # order) is derived from the method registry on access, so a method
    # registered as portfolio-eligible appears here without a second table.
    if name == "GHD_ALGORITHMS":
        return _portfolio_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def ghd_portfolio(
    hypergraph: Hypergraph,
    k: int,
    timeout: float | None = None,
    algorithms: dict[str, CheckFunction] | None = None,
    engine: "object | None" = None,
) -> tuple[CheckOutcome, dict[str, CheckOutcome]]:
    """The paper's parallel portfolio (Table 4 protocol).

    Without an ``engine`` every algorithm runs sequentially with the full
    timeout and the portfolio verdict is the fastest definite answer (which
    is what "run in parallel and stop at the first answer" observes).  With a
    :class:`repro.engine.DecompositionEngine`, the three standard algorithms
    genuinely race in parallel worker processes (losers are cancelled) and
    the verdict is served from the engine's result store when cached; custom
    ``algorithms`` always take the sequential path, since the engine races
    its registered methods only.  Returns ``(portfolio_outcome,
    per_algorithm)``.
    """
    if engine is not None and algorithms is None:
        return engine.portfolio(hypergraph, k, timeout)
    algorithms = algorithms or _portfolio_algorithms()
    per_algorithm = {
        name: timed_check(fn, hypergraph, k, timeout)
        for name, fn in algorithms.items()
    }
    answered = [o for o in per_algorithm.values() if o.answered]
    if answered:
        best = min(answered, key=lambda o: o.seconds)
        return best, per_algorithm
    slowest = max(per_algorithm.values(), key=lambda o: o.seconds)
    return slowest, per_algorithm
