"""``BalSep`` — ``Check(GHD, k)`` via balanced separators (Section 4.4).

The algorithm decomposes *extended subhypergraphs* ``H' ∪ Sp``: a subset of
real edges plus a set of *special edges* (vertex sets standing for bags
created higher up, which keep the recursion connected — Definition 6).  At
every step it picks a λ-label whose covered vertex set is a **balanced
separator** of ``H' ∪ Sp`` (every [B(λ)]-component contains at most half the
edges, Definition 7); Lemma 1 guarantees a GHD of width ≤ k can always be
rooted at such a separator, so exhausting all balanced separators proves a
"no" answer (Theorem 2).

Balancedness halves the instance at every level, which is why the paper
finds ``BalSep`` particularly fast at *refuting* ``ghw ≤ k`` — there are far
fewer balanced separators than arbitrary ones.

Like the BIP variants, the separator iterator first tries combinations of
full edges of ``H`` and falls back to combinations containing subedges from
``f(H, k)`` (restricted to the edges that can matter for the current
subhypergraph).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.components import components, vertices_of
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, subedge_family
from repro.decomp.detkdecomp import covering_combinations
from repro.errors import ValidationError
from repro.utils.deadline import Deadline

__all__ = ["BalSep", "check_ghd_balsep"]


class BalSep:
    """Recursive balanced-separator search for ``Check(GHD, k)``."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.subedge_budget = subedge_budget
        self._family = dict(hypergraph.edges)
        # Special edges: canonical name per distinct vertex set.
        self._special_vertices: dict[str, frozenset[str]] = {}
        self._special_ids: dict[frozenset[str], str] = {}
        # Subedges used inside λ-labels, mapped back to a parent real edge.
        self._subedge_vertices: dict[str, frozenset[str]] = {}
        self._subedge_parent: dict[str, str] = {}
        self._subedge_pool: list[str] | None = None
        self._failures: set[tuple[frozenset[str], frozenset[str]]] = set()

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return a GHD of width ≤ k, or ``None`` when ``ghw(H) > k``."""
        if not self._family:
            return Decomposition(
                self.hypergraph, DecompositionNode(frozenset(), {}), kind="GHD"
            )
        root = self._decompose(frozenset(self._family), frozenset())
        if root is None:
            return None
        self._fix_covers(root)
        return Decomposition(self.hypergraph, root, kind="GHD")

    # ------------------------------------------------------------- plumbing

    def _special_name(self, vertices: frozenset[str]) -> str:
        name = self._special_ids.get(vertices)
        if name is None:
            name = f"__sp{len(self._special_ids)}"
            self._special_ids[vertices] = name
            self._special_vertices[name] = vertices
        return name

    def _lookup(self, name: str) -> frozenset[str]:
        if name in self._family:
            return self._family[name]
        if name in self._special_vertices:
            return self._special_vertices[name]
        return self._subedge_vertices[name]

    def _member_family(
        self, real: frozenset[str], special: frozenset[str]
    ) -> dict[str, frozenset[str]]:
        family = {name: self._family[name] for name in real}
        family.update({name: self._special_vertices[name] for name in special})
        return family

    # ---------------------------------------------------------------- search

    def _decompose(
        self, real: frozenset[str], special: frozenset[str]
    ) -> DecompositionNode | None:
        """Decompose the extended subhypergraph ``real ∪ special``."""
        self.deadline.check()
        key = (real, special)
        if key in self._failures:
            return None
        members = self._member_family(real, special)

        # Base cases (Algorithm 2, lines 5–12).
        if len(members) == 1:
            (name, vertices), = members.items()
            return DecompositionNode(vertices, {name: 1.0})
        if len(members) == 2:
            (n1, v1), (n2, v2) = members.items()
            child = DecompositionNode(v2, {n2: 1.0})
            return DecompositionNode(v1, {n1: 1.0}, [child])

        total = len(members)
        seen_bags: set[frozenset[str]] = set()
        scope = vertices_of(members)

        for separator in self._balanced_separators(members, scope, total):
            self.deadline.check()
            # Restrict the bag to the current scope: λ-edges are global and
            # may contain vertices foreign to this extended subhypergraph;
            # keeping them would break connectedness across sibling subtrees.
            bag = frozenset().union(*(self._lookup(n) for n in separator)) & scope
            if bag in seen_bags:
                continue
            seen_bags.add(bag)

            child_states = components(members, bag)
            new_special = self._special_name(bag)
            sub_decomps: list[DecompositionNode] = []
            success = True
            for comp in child_states:
                comp_real = frozenset(n for n in comp if n in self._family)
                comp_special = frozenset(
                    n for n in comp if n not in self._family
                ) | {new_special}
                child = self._decompose(comp_real, comp_special)
                if child is None:
                    success = False
                    break
                sub_decomps.append(child)
            if not success:
                continue
            cover = {name: 1.0 for name in separator}
            return self._build_ghd(bag, cover, sub_decomps, new_special)

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _subedges(self) -> list[str]:
        """Global ``f(H, k)`` subedge names, generated once on demand."""
        if self._subedge_pool is None:
            pool: list[str] = []
            for i, vertices in enumerate(
                subedge_family(
                    self._family,
                    self.k,
                    budget=self.subedge_budget,
                    deadline=self.deadline,
                )
            ):
                name = f"__bsub{i}"
                parent = next(
                    e_name for e_name, e in self._family.items() if vertices <= e
                )
                self._subedge_vertices[name] = vertices
                self._subedge_parent[name] = parent
                pool.append(name)
            self._subedge_pool = pool
        return self._subedge_pool

    def _balanced_separators(
        self,
        members: dict[str, frozenset[str]],
        scope: frozenset[str],
        total: int,
    ) -> Iterator[tuple[str, ...]]:
        """All λ-candidates (≤ k edges of ``H`` / subedges) that balance."""
        full = sorted(
            (name for name, edge in self._family.items() if edge & scope),
            key=lambda n: (-len(self._family[n] & scope), n),
        )
        lookup = dict(self._family)
        limit = total / 2

        def balanced(candidate: tuple[str, ...]) -> bool:
            bag = frozenset().union(*(lookup[n] for n in candidate))
            return all(len(c) <= limit for c in components(members, bag))

        for candidate in covering_combinations(
            lookup, full, [], frozenset(), self.k, self.deadline,
            require_primary=False,
        ):
            if balanced(candidate):
                yield candidate

        sub_names = [
            name for name in self._subedges()
            if self._subedge_vertices[name] & scope
        ]
        if not sub_names:
            return
        lookup.update({name: self._subedge_vertices[name] for name in sub_names})
        for candidate in covering_combinations(
            lookup, sub_names, full, frozenset(), self.k, self.deadline,
            require_primary=True,
        ):
            if balanced(candidate):
                yield candidate

    # ------------------------------------------------------------- assembly

    def _build_ghd(
        self,
        bag: frozenset[str],
        cover: dict[str, float],
        sub_decomps: list[DecompositionNode],
        special_name: str,
    ) -> DecompositionNode:
        """Function ``BuildGHD``: merge the child GHDs below a new root.

        Each child decomposition covers the special edge ``bag`` somewhere
        (condition 3 of Definition 8).  We re-root the child at that node;
        if it is the dedicated special leaf (λ = {special}), its children are
        attached to the new root directly, otherwise the re-rooted node
        itself is attached (its bag contains the special edge, which keeps
        all shared vertices connected through the new root).
        """
        node = DecompositionNode(bag, cover)
        special_set = self._special_vertices[special_name]
        for child in sub_decomps:
            target = _find_special_leaf(child, special_name)
            if target is not None:
                rerooted = _reroot(child, target)
                node.children.extend(rerooted.children)
                continue
            target = _find_covering_node(child, special_set)
            if target is None:  # pragma: no cover - contract of Decompose
                raise ValidationError(
                    "child decomposition does not cover its connecting special edge"
                )
            node.children.append(_reroot(child, target))
        return node

    def _fix_covers(self, root: DecompositionNode) -> None:
        """Swap subedges in λ-labels for their original parent edges."""
        stack = [root]
        while stack:
            node = stack.pop()
            fixed: dict[str, float] = {}
            for name, weight in node.cover.items():
                if name in self._subedge_parent:
                    name = self._subedge_parent[name]
                elif name.startswith("__sp"):  # pragma: no cover - invariant
                    raise ValidationError("special edge survived into the final GHD")
                fixed[name] = max(fixed.get(name, 0.0), weight)
            node.cover = fixed
            stack.extend(node.children)


# ---------------------------------------------------------------- tree utils


def _find_special_leaf(
    root: DecompositionNode, special_name: str
) -> DecompositionNode | None:
    """The unique node with λ = {special_name}, if it exists."""
    stack = [root]
    while stack:
        node = stack.pop()
        if set(node.cover) == {special_name}:
            return node
        stack.extend(node.children)
    return None


def _find_covering_node(
    root: DecompositionNode, vertices: frozenset[str]
) -> DecompositionNode | None:
    """Any node whose bag contains ``vertices``."""
    stack = [root]
    while stack:
        node = stack.pop()
        if vertices <= node.bag:
            return node
        stack.extend(node.children)
    return None


def _reroot(root: DecompositionNode, target: DecompositionNode) -> DecompositionNode:
    """Re-root the tree at ``target`` (nodes are reused, children rewritten)."""
    if target is root:
        return root
    parents: dict[int, DecompositionNode | None] = {id(root): None}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            parents[id(child)] = node
            stack.append(child)
    # Walk from target to root, flipping parent links.
    node: DecompositionNode | None = target
    prev: DecompositionNode | None = None
    while node is not None:
        parent = parents[id(node)]
        if prev is not None:
            node.children = [c for c in node.children if c is not prev]
        if parent is not None:
            node.children = list(node.children) + [parent]
        node, prev = parent, node
    # After flipping, `parent` chains now point downwards from target.
    return target


def check_ghd_balsep(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the balanced-separator algorithm."""
    return BalSep(
        hypergraph, k, deadline=deadline, subedge_budget=subedge_budget
    ).decompose()
