"""``BalSep`` — ``Check(GHD, k)`` via balanced separators (Section 4.4).

The algorithm decomposes *extended subhypergraphs* ``H' ∪ Sp``: a subset of
real edges plus a set of *special edges* (vertex sets standing for bags
created higher up, which keep the recursion connected — Definition 6).  At
every step it picks a λ-label whose covered vertex set is a **balanced
separator** of ``H' ∪ Sp`` (every [B(λ)]-component contains at most half the
edges, Definition 7); Lemma 1 guarantees a GHD of width ≤ k can always be
rooted at such a separator, so exhausting all balanced separators proves a
"no" answer (Theorem 2).

Balancedness halves the instance at every level, which is why the paper
finds ``BalSep`` particularly fast at *refuting* ``ghw ≤ k`` — there are far
fewer balanced separators than arbitrary ones.

The search state lives on the integer-bitset kernel
(:mod:`repro.core.bitset`): a state is a ``(real_edges_mask,
special_edges_mask)`` int pair (specials are interned per distinct vertex
set and indexed into a side table), balancedness checks are popcounts over
mask components, and names only reappear when :class:`DecompositionNode`
objects are built.  The pre-bitset implementation is preserved as
:class:`repro.decomp.reference.ReferenceBalSep`.

Like the BIP variants, the separator iterator first tries combinations of
full edges of ``H`` and falls back to combinations containing subedges from
``f(H, k)`` (restricted to the edges that can matter for the current
subhypergraph).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.bitset import (
    HypergraphView,
    dedupe_effective,
    iter_bits,
    mask_components_from,
    mask_covering_combinations,
    scoped_candidates,
)
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, mask_subedge_entries
from repro.errors import ValidationError
from repro.utils.deadline import Deadline

__all__ = ["BalSep", "check_ghd_balsep"]


class BalSep:
    """Recursive balanced-separator search for ``Check(GHD, k)``."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.subedge_budget = subedge_budget
        self._view = HypergraphView.of(hypergraph)
        self._masks = self._view.edge_masks
        # Special edges: one id per distinct vertex mask.
        self._special_masks: list[int] = []
        self._special_ids: dict[int, int] = {}
        # Subedges used inside λ-labels: vertex mask + parent edge index.
        self._subedge_masks: list[int] = []
        self._subedge_parent_idx: list[int] = []
        self._subedge_pool: list[int] | None = None
        self._failures: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return a GHD of width ≤ k, or ``None`` when ``ghw(H) > k``."""
        if not self._masks:
            return Decomposition(
                self.hypergraph, DecompositionNode(frozenset(), {}), kind="GHD"
            )
        root = self._decompose(self._view.all_edges, 0)
        if root is None:
            return None
        self._fix_covers(root)
        return Decomposition(self.hypergraph, root, kind="GHD")

    # ------------------------------------------------------------- plumbing

    def _special_name(self, vertices: frozenset[str]) -> str:
        """Canonical ``__spN`` name for a special edge's vertex set."""
        return f"__sp{self._special_id(self._view.vertices_mask(vertices))}"

    def _special_id(self, vertices: int) -> int:
        sid = self._special_ids.get(vertices)
        if sid is None:
            sid = len(self._special_masks)
            self._special_ids[vertices] = sid
            self._special_masks.append(vertices)
        return sid

    def _member_lists(
        self, real: int, special: int
    ) -> tuple[list[int], list[int], list[int]]:
        """Edge indices, special ids, and vertex masks of a state's members."""
        real_idx = list(iter_bits(real))
        spec_idx = list(iter_bits(special))
        masks = self._masks
        specials = self._special_masks
        member_masks = [masks[i] for i in real_idx]
        member_masks.extend(specials[j] for j in spec_idx)
        return real_idx, spec_idx, member_masks

    def _member_name(self, real_idx: list[int], spec_idx: list[int], p: int) -> str:
        if p < len(real_idx):
            return self._view.edge_names[real_idx[p]]
        return f"__sp{spec_idx[p - len(real_idx)]}"

    # ---------------------------------------------------------------- search

    def _decompose(self, real: int, special: int) -> DecompositionNode | None:
        """Decompose the extended subhypergraph ``real ∪ special``."""
        self.deadline.check()
        key = (real, special)
        if key in self._failures:
            return None
        view = self._view
        real_idx, spec_idx, member_masks = self._member_lists(real, special)
        total = len(member_masks)

        # Base cases (Algorithm 2, lines 5–12).
        if total == 1:
            return DecompositionNode(
                view.vertex_names_of(member_masks[0]),
                {self._member_name(real_idx, spec_idx, 0): 1.0},
            )
        if total == 2:
            child = DecompositionNode(
                view.vertex_names_of(member_masks[1]),
                {self._member_name(real_idx, spec_idx, 1): 1.0},
            )
            return DecompositionNode(
                view.vertex_names_of(member_masks[0]),
                {self._member_name(real_idx, spec_idx, 0): 1.0},
                [child],
            )

        scope = 0
        for m in member_masks:
            scope |= m
        entries = [(1 << p, m) for p, m in enumerate(member_masks)]
        seen_bags: set[int] = set()
        n_real = len(real_idx)

        for bag_full, cover_names in self._balanced_separators(entries, scope, total):
            self.deadline.check()
            # Restrict the bag to the current scope: λ-edges are global and
            # may contain vertices foreign to this extended subhypergraph;
            # keeping them would break connectedness across sibling subtrees.
            bag = bag_full & scope
            if bag in seen_bags:
                continue
            seen_bags.add(bag)

            child_states = mask_components_from(entries, bag)
            new_special = self._special_id(bag)
            sub_decomps: list[DecompositionNode] = []
            success = True
            for comp_members, _ in child_states:
                comp_real = 0
                comp_special = 1 << new_special
                for p in iter_bits(comp_members):
                    if p < n_real:
                        comp_real |= 1 << real_idx[p]
                    else:
                        comp_special |= 1 << spec_idx[p - n_real]
                child = self._decompose(comp_real, comp_special)
                if child is None:
                    success = False
                    break
                sub_decomps.append(child)
            if not success:
                continue
            cover = {name: 1.0 for name in cover_names}
            return self._build_ghd(
                view.vertex_names_of(bag), cover, sub_decomps, new_special
            )

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _subedges(self) -> list[int]:
        """Global ``f(H, k)`` subedge ids, generated once on demand."""
        if self._subedge_pool is None:
            pool: list[int] = []
            for mask, parent in mask_subedge_entries(
                self._masks,
                self.k,
                budget=self.subedge_budget,
                deadline=self.deadline,
            ):
                pool.append(len(self._subedge_masks))
                self._subedge_masks.append(mask)
                self._subedge_parent_idx.append(parent)
            self._subedge_pool = pool
        return self._subedge_pool

    def _balanced_separators(
        self,
        entries: list[tuple[int, int]],
        scope: int,
        total: int,
    ) -> Iterator[tuple[int, tuple[str, ...]]]:
        """All λ-candidates (≤ k edges of ``H`` / subedges) that balance.

        Yields ``(bag_union_mask, cover_names)`` pairs; the caller restricts
        the bag to the scope and converts at the node boundary.
        """
        masks = self._masks
        names = self._view.edge_names
        # One representative per effective mask (candidate ∩ scope): the bag
        # is scope-restricted and the members live inside the scope, so
        # candidates sharing an effective mask yield identical bags,
        # components and balance verdicts.
        seen_effective: set[int] = set()
        full, full_masks = scoped_candidates(masks, scope, names, seen_effective)
        limit = total / 2

        def balanced(bag: int) -> bool:
            return all(
                members.bit_count() <= limit
                for members, _ in mask_components_from(entries, bag)
            )

        for combo in mask_covering_combinations(
            full_masks, 0, 0, self.k, self.deadline, require_primary=False
        ):
            bag = 0
            for j in combo:
                bag |= full_masks[j]
            if balanced(bag):
                yield bag, tuple(names[full[j]] for j in combo)

        sub_ids, sub_masks = dedupe_effective(
            ((s, self._subedge_masks[s]) for s in self._subedges()),
            scope,
            seen_effective,
        )
        if not sub_ids:
            return
        n_sub = len(sub_ids)
        candidate_masks = sub_masks + full_masks
        for combo in mask_covering_combinations(
            candidate_masks, n_sub, 0, self.k, self.deadline, require_primary=True
        ):
            bag = 0
            for j in combo:
                bag |= candidate_masks[j]
            if balanced(bag):
                yield bag, tuple(
                    f"__bsub{sub_ids[j]}" if j < n_sub else names[full[j - n_sub]]
                    for j in combo
                )

    # ------------------------------------------------------------- assembly

    def _build_ghd(
        self,
        bag: frozenset[str],
        cover: dict[str, float],
        sub_decomps: list[DecompositionNode],
        special_id: int,
    ) -> DecompositionNode:
        """Function ``BuildGHD``: merge the child GHDs below a new root.

        Each child decomposition covers the special edge ``bag`` somewhere
        (condition 3 of Definition 8).  We re-root the child at that node;
        if it is the dedicated special leaf (λ = {special}), its children are
        attached to the new root directly, otherwise the re-rooted node
        itself is attached (its bag contains the special edge, which keeps
        all shared vertices connected through the new root).
        """
        node = DecompositionNode(bag, cover)
        special_name = f"__sp{special_id}"
        special_set = self._view.vertex_names_of(self._special_masks[special_id])
        for child in sub_decomps:
            target = _find_special_leaf(child, special_name)
            if target is not None:
                rerooted = _reroot(child, target)
                node.children.extend(rerooted.children)
                continue
            target = _find_covering_node(child, special_set)
            if target is None:  # pragma: no cover - contract of Decompose
                raise ValidationError(
                    "child decomposition does not cover its connecting special edge"
                )
            node.children.append(_reroot(child, target))
        return node

    def _fix_covers(self, root: DecompositionNode) -> None:
        """Swap subedges in λ-labels for their original parent edges."""
        edge_names = self._view.edge_names
        stack = [root]
        while stack:
            node = stack.pop()
            fixed: dict[str, float] = {}
            for name, weight in node.cover.items():
                if name.startswith("__bsub") and name not in self._view.edge_bit:
                    name = edge_names[self._subedge_parent_idx[int(name[6:])]]
                elif name.startswith("__sp"):  # pragma: no cover - invariant
                    raise ValidationError("special edge survived into the final GHD")
                fixed[name] = max(fixed.get(name, 0.0), weight)
            node.cover = fixed
            stack.extend(node.children)


# ---------------------------------------------------------------- tree utils


def _find_special_leaf(
    root: DecompositionNode, special_name: str
) -> DecompositionNode | None:
    """The unique node with λ = {special_name}, if it exists."""
    stack = [root]
    while stack:
        node = stack.pop()
        if set(node.cover) == {special_name}:
            return node
        stack.extend(node.children)
    return None


def _find_covering_node(
    root: DecompositionNode, vertices: frozenset[str]
) -> DecompositionNode | None:
    """Any node whose bag contains ``vertices``."""
    stack = [root]
    while stack:
        node = stack.pop()
        if vertices <= node.bag:
            return node
        stack.extend(node.children)
    return None


def _reroot(root: DecompositionNode, target: DecompositionNode) -> DecompositionNode:
    """Re-root the tree at ``target`` (nodes are reused, children rewritten)."""
    if target is root:
        return root
    parents: dict[int, DecompositionNode | None] = {id(root): None}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            parents[id(child)] = node
            stack.append(child)
    # Walk from target to root, flipping parent links.
    node: DecompositionNode | None = target
    prev: DecompositionNode | None = None
    while node is not None:
        parent = parents[id(node)]
        if prev is not None:
            node.children = [c for c in node.children if c is not prev]
        if parent is not None:
            node.children = list(node.children) + [parent]
        node, prev = parent, node
    # After flipping, `parent` chains now point downwards from target.
    return target


def check_ghd_balsep(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the balanced-separator algorithm."""
    return BalSep(
        hypergraph, k, deadline=deadline, subedge_budget=subedge_budget
    ).decompose()
