"""The hybrid GHD algorithm (the paper's future-work proposal, Section 7).

    "one could try to apply our new 'balanced separator' algorithm
    recursively only down to a certain recursion depth (say depth 2 or 3) to
    split a big given hypergraph into smaller subhypergraphs and then
    continue with the 'global' or 'local' computation from Section 4"

— which is exactly what the follow-up work (Gottlob, Okulmus & Pichler,
IJCAI 2020) turned into *BalancedGo*.  This module implements the sequential
version: :class:`HybridBalSep` runs the balanced-separator recursion down to
``switch_depth`` and then hands each remaining extended subhypergraph to a
``LocalBIP``-style bounded search.

The handoff must still respect the special edges of the extended
subhypergraph, so the inner search is a GHD search over the component's
*real* edges plus the inherited special edges treated as extra edges that
only need covering (they may not be used in λ-labels).
"""

from __future__ import annotations

from repro.core.components import components, vertices_of
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, subedge_family
from repro.decomp.balsep import BalSep
from repro.decomp.detkdecomp import covering_combinations
from repro.utils.deadline import Deadline

__all__ = ["HybridBalSep", "check_ghd_hybrid"]


class _InnerGHDSearch:
    """LocalBIP-style GHD search over an extended subhypergraph.

    ``special`` members behave like edges of the instance (they must be
    covered by some bag, they participate in components) but cannot appear
    in λ-labels — λ-labels draw from the global hypergraph's edges and the
    local subedge pool, exactly as in the outer ``BalSep`` search.
    """

    def __init__(self, balsep: "HybridBalSep"):
        self.balsep = balsep
        self.k = balsep.k
        self.deadline = balsep.deadline
        self._failures: set[tuple[frozenset[str], frozenset[str], frozenset[str]]] = set()

    def decompose(
        self, real: frozenset[str], special: frozenset[str], conn: frozenset[str]
    ) -> DecompositionNode | None:
        self.deadline.check()
        key = (real, special, conn)
        if key in self._failures:
            return None
        owner = self.balsep
        members = owner.member_family(real, special)
        member_vertices = vertices_of(members)

        # Base case: few members and all specials coverable?  A single node
        # whose λ consists of (at most k) real edges covering everything.
        if len(real) <= self.k and all(
            owner.special_vertices(s) <= member_vertices for s in special
        ):
            bag = member_vertices | conn
            cover_pool = {
                name: owner.family[name]
                for name in owner.family
                if owner.family[name] & bag
            }
            chosen = _greedy_cover(cover_pool, bag, self.k)
            if chosen is not None:
                return DecompositionNode(bag, {name: 1.0 for name in chosen})

        for separator, lookup in self._separators(members, conn):
            self.deadline.check()
            bag = frozenset().union(*(lookup[n] for n in separator))
            bag &= member_vertices | conn
            if not conn <= bag:
                continue
            child_states = components(members, bag)
            if any(state == frozenset(members) for state in child_states):
                continue  # no progress
            children: list[DecompositionNode] = []
            success = True
            for state in child_states:
                child_real = frozenset(n for n in state if n in owner.family)
                child_special = state - child_real
                child_conn = vertices_of(members, state) & bag
                child = self.decompose(child_real, child_special, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                cover: dict[str, float] = {}
                for name in separator:
                    cover[owner.resolve_parent(name)] = 1.0
                return DecompositionNode(bag, cover, children)

        self._failures.add(key)
        return None

    def _separators(self, members, conn):
        owner = self.balsep
        scope = vertices_of(members) | conn
        full = sorted(
            (name for name, edge in owner.family.items() if edge & scope),
            key=lambda n: (-len(owner.family[n] & scope), n),
        )
        lookup = dict(owner.family)
        for combo in covering_combinations(
            lookup, full, [], conn, self.k, self.deadline, require_primary=False
        ):
            yield combo, lookup

        sub_names = [
            name
            for name in owner.subedge_pool()
            if owner.subedge_vertices(name) & scope
        ]
        if not sub_names:
            return
        lookup = dict(lookup)
        lookup.update({name: owner.subedge_vertices(name) for name in sub_names})
        for combo in covering_combinations(
            lookup, sub_names, full, conn, self.k, self.deadline, require_primary=True
        ):
            yield combo, lookup


def _greedy_cover(
    pool: dict[str, frozenset[str]], bag: frozenset[str], k: int
) -> tuple[str, ...] | None:
    """A ≤k integral cover of ``bag`` from ``pool``, or None (greedy+exact)."""
    from repro.core.covers import minimum_integral_cover

    cover = minimum_integral_cover(pool, bag, max_size=k)
    return cover


class HybridBalSep(BalSep):
    """BalSep down to ``switch_depth``, then the LocalBIP-style inner search."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        switch_depth: int = 2,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        super().__init__(hypergraph, k, deadline=deadline, subedge_budget=subedge_budget)
        self.switch_depth = switch_depth
        self._depth = 0
        self._inner = _InnerGHDSearch(self)

    # ------------------------------------------------- accessors for inner

    @property
    def family(self) -> dict[str, frozenset[str]]:
        return self._family

    def member_family(self, real: frozenset[str], special: frozenset[str]):
        return self._member_family(real, special)

    def special_vertices(self, name: str) -> frozenset[str]:
        return self._special_vertices[name]

    def subedge_vertices(self, name: str) -> frozenset[str]:
        return self._subedge_vertices[name]

    def subedge_pool(self) -> list[str]:
        return self._subedges()

    def resolve_parent(self, name: str) -> str:
        return self._subedge_parent.get(name, name)

    # ------------------------------------------------------------ recursion

    def _decompose(
        self, real: frozenset[str], special: frozenset[str]
    ) -> DecompositionNode | None:
        if self._depth >= self.switch_depth and len(real) + len(special) > 2:
            return self._inner.decompose(real, special, frozenset())
        self._depth += 1
        try:
            return super()._decompose(real, special)
        finally:
            self._depth -= 1


def check_ghd_hybrid(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    switch_depth: int = 2,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the hybrid BalSep → LocalBIP strategy."""
    return HybridBalSep(
        hypergraph,
        k,
        switch_depth=switch_depth,
        deadline=deadline,
        subedge_budget=subedge_budget,
    ).decompose()
