"""The hybrid GHD algorithm (the paper's future-work proposal, Section 7).

    "one could try to apply our new 'balanced separator' algorithm
    recursively only down to a certain recursion depth (say depth 2 or 3) to
    split a big given hypergraph into smaller subhypergraphs and then
    continue with the 'global' or 'local' computation from Section 4"

— which is exactly what the follow-up work (Gottlob, Okulmus & Pichler,
IJCAI 2020) turned into *BalancedGo*.  This module implements the sequential
version: :class:`HybridBalSep` runs the balanced-separator recursion down to
``switch_depth`` and then hands each remaining extended subhypergraph to a
``LocalBIP``-style bounded search.

The handoff must still respect the special edges of the extended
subhypergraph, so the inner search is a GHD search over the component's
*real* edges plus the inherited special edges treated as extra edges that
only need covering (they may not be used in λ-labels).  Both layers share
the outer :class:`~repro.decomp.balsep.BalSep` mask state: inner search
states are ``(real_mask, special_mask, connector_mask)`` int triples over
the same edge/special/subedge index tables.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.bitset import (
    dedupe_effective,
    iter_bits,
    mask_components_from,
    mask_covering_combinations,
    mask_minimum_cover,
    scoped_candidates,
)
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET
from repro.decomp.balsep import BalSep
from repro.utils.deadline import Deadline

__all__ = ["HybridBalSep", "check_ghd_hybrid"]


class _InnerGHDSearch:
    """LocalBIP-style GHD search over an extended subhypergraph.

    ``special`` members behave like edges of the instance (they must be
    covered by some bag, they participate in components) but cannot appear
    in λ-labels — λ-labels draw from the global hypergraph's edges and the
    shared subedge pool, exactly as in the outer ``BalSep`` search.
    """

    def __init__(self, balsep: "HybridBalSep"):
        self.balsep = balsep
        self.k = balsep.k
        self.deadline = balsep.deadline
        self._failures: set[tuple[int, int, int]] = set()

    def decompose(
        self, real: int, special: int, conn: int
    ) -> DecompositionNode | None:
        self.deadline.check()
        key = (real, special, conn)
        if key in self._failures:
            return None
        owner = self.balsep
        view = owner._view
        masks = owner._masks
        real_idx, spec_idx, member_masks = owner._member_lists(real, special)
        n_real = len(real_idx)
        member_vertices = 0
        for m in member_masks:
            member_vertices |= m

        # Base case: few members and all specials coverable?  A single node
        # whose λ consists of (at most k) real edges covering everything.
        if real.bit_count() <= self.k and all(
            not owner._special_masks[j] & ~member_vertices for j in spec_idx
        ):
            bag = member_vertices | conn
            candidates = [i for i in range(len(masks)) if masks[i] & bag]
            chosen = mask_minimum_cover(
                [masks[i] for i in candidates], bag, max_size=self.k
            )
            if chosen is not None:
                return DecompositionNode(
                    view.vertex_names_of(bag),
                    {view.edge_names[candidates[j]]: 1.0 for j in chosen},
                )

        entries = [(1 << p, m) for p, m in enumerate(member_masks)]
        all_members = (1 << len(member_masks)) - 1
        seen_bags: set[int] = set()

        for bag_full, cover_names in self._separators(member_vertices, conn):
            self.deadline.check()
            bag = bag_full & (member_vertices | conn)
            if conn & ~bag:
                continue
            if bag in seen_bags:
                continue  # child states depend only on the bag
            seen_bags.add(bag)
            child_states = mask_components_from(entries, bag)
            if any(members == all_members for members, _ in child_states):
                continue  # no progress
            children: list[DecompositionNode] = []
            success = True
            for comp_members, _ in child_states:
                child_real = 0
                child_special = 0
                child_vertices = 0
                for p in iter_bits(comp_members):
                    child_vertices |= member_masks[p]
                    if p < n_real:
                        child_real |= 1 << real_idx[p]
                    else:
                        child_special |= 1 << spec_idx[p - n_real]
                child_conn = child_vertices & bag
                child = self.decompose(child_real, child_special, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                cover = {name: 1.0 for name in cover_names}
                return DecompositionNode(view.vertex_names_of(bag), cover, children)

        self._failures.add(key)
        return None

    def _separators(
        self, member_vertices: int, conn: int
    ) -> Iterator[tuple[int, tuple[str, ...]]]:
        """Full-edge combinations first, then subedge-containing ones.

        Yields ``(bag_union_mask, cover_names)`` with subedges resolved to
        their parent edge names.
        """
        owner = self.balsep
        masks = owner._masks
        names = owner._view.edge_names
        scope = member_vertices | conn
        # One representative per effective mask (∩ scope) — bags, connector
        # coverage and child states are all scope-restricted.
        seen_effective: set[int] = set()
        full, full_masks = scoped_candidates(masks, scope, names, seen_effective)
        for combo in mask_covering_combinations(
            full_masks, 0, conn, self.k, self.deadline, require_primary=False
        ):
            bag = 0
            for j in combo:
                bag |= full_masks[j]
            yield bag, tuple(names[full[j]] for j in combo)

        sub_ids, sub_masks = dedupe_effective(
            ((s, owner._subedge_masks[s]) for s in owner._subedges()),
            scope,
            seen_effective,
        )
        if not sub_ids:
            return
        n_sub = len(sub_ids)
        candidate_masks = sub_masks + full_masks
        for combo in mask_covering_combinations(
            candidate_masks, n_sub, conn, self.k, self.deadline,
            require_primary=True,
        ):
            bag = 0
            for j in combo:
                bag |= candidate_masks[j]
            yield bag, tuple(
                names[owner._subedge_parent_idx[sub_ids[j]]] if j < n_sub
                else names[full[j - n_sub]]
                for j in combo
            )


class HybridBalSep(BalSep):
    """BalSep down to ``switch_depth``, then the LocalBIP-style inner search."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        switch_depth: int = 2,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        super().__init__(hypergraph, k, deadline=deadline, subedge_budget=subedge_budget)
        self.switch_depth = switch_depth
        self._depth = 0
        self._inner = _InnerGHDSearch(self)

    # ------------------------------------------------------------ recursion

    def _decompose(self, real: int, special: int) -> DecompositionNode | None:
        if (
            self._depth >= self.switch_depth
            and real.bit_count() + special.bit_count() > 2
        ):
            return self._inner.decompose(real, special, 0)
        self._depth += 1
        try:
            return super()._decompose(real, special)
        finally:
            self._depth -= 1


def check_ghd_hybrid(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    switch_depth: int = 2,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the hybrid BalSep → LocalBIP strategy."""
    return HybridBalSep(
        hypergraph,
        k,
        switch_depth=switch_depth,
        deadline=deadline,
        subedge_budget=subedge_budget,
    ).decompose()
