"""The hypergraph data structure.

Following Section 3.1 of the paper, a hypergraph ``H = (V(H), E(H))`` is a set
of vertices and a set of non-empty hyperedges, with no isolated vertices, so a
hypergraph is identified with its set of edges.  We additionally keep a stable
*name* for every edge (mirroring the DBAI file format ``e1(a,b,c)``) because
decompositions refer to edges by name in their λ-labels.

The class is immutable: every mutating operation returns a new hypergraph.
This makes hypergraphs hashable, safe to share between algorithms, and easy to
memoise on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from types import MappingProxyType

from repro.errors import HypergraphError

__all__ = ["Hypergraph"]


def _freeze_edges(
    edges: Mapping[str, Iterable[str]] | Iterable[Iterable[str]],
) -> dict[str, frozenset[str]]:
    """Normalise the accepted edge inputs into ``{name: frozenset(vertices)}``."""
    frozen: dict[str, frozenset[str]] = {}
    if isinstance(edges, Mapping):
        named = edges.items()
    else:
        named = ((f"e{i + 1}", vs) for i, vs in enumerate(edges))
    for name, vertices in named:
        if not isinstance(name, str) or not name:
            raise HypergraphError(f"edge names must be non-empty strings, got {name!r}")
        vertex_set = frozenset(str(v) for v in vertices)
        if not vertex_set:
            raise HypergraphError(f"edge {name!r} is empty; hyperedges must be non-empty")
        if name in frozen:
            raise HypergraphError(f"duplicate edge name {name!r}")
        frozen[name] = vertex_set
    return frozen


def _unpickle(
    frozen: dict[str, frozenset[str]],
    name: str,
    fingerprint: str | None = None,
) -> "Hypergraph":
    """Pickle helper: rebuild per-process caches (edges view, bitset view).

    A fingerprint computed before pickling travels along, so an unpickled
    instance (e.g. in a worker process) answers its first
    :func:`repro.engine.fingerprint.fingerprint` call without re-deriving
    the canonical form.
    """
    h = Hypergraph._from_frozen(frozen, name)
    h._fingerprint = fingerprint
    return h


class Hypergraph:
    """An immutable hypergraph with named edges.

    Parameters
    ----------
    edges:
        Either a mapping from edge name to an iterable of vertex names, or an
        iterable of vertex iterables (edges are then named ``e1, e2, ...`` in
        order).
    name:
        Optional identifier, used by the benchmark repository.

    Examples
    --------
    >>> h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]})
    >>> sorted(h.vertices)
    ['x', 'y', 'z']
    >>> h.arity
    2
    """

    __slots__ = (
        "_edges",
        "_edges_view",
        "_incidence",
        "_vertices",
        "name",
        "_hash",
        "_fingerprint",
        "_view",
    )

    def __init__(
        self,
        edges: Mapping[str, Iterable[str]] | Iterable[Iterable[str]],
        name: str = "",
    ):
        self._init_frozen(_freeze_edges(edges), name)

    def _init_frozen(self, frozen: dict[str, frozenset[str]], name: str) -> None:
        """Shared initialisation from an already-normalised edge mapping."""
        self._edges = frozen
        self._edges_view = MappingProxyType(frozen)
        self.name = name
        vertices: set[str] = set()
        incidence: dict[str, list[str]] = {}
        for edge_name, vertex_set in frozen.items():
            vertices.update(vertex_set)
            for v in vertex_set:
                incidence.setdefault(v, []).append(edge_name)
        self._vertices = frozenset(vertices)
        self._incidence = {v: tuple(names) for v, names in incidence.items()}
        self._hash: int | None = None
        #: Cached content fingerprint (filled by ``repro.engine.fingerprint``).
        self._fingerprint: str | None = None
        #: Cached :class:`repro.core.bitset.HypergraphView` (built on demand).
        self._view = None

    @classmethod
    def _from_frozen(
        cls, frozen: dict[str, frozenset[str]], name: str = ""
    ) -> "Hypergraph":
        """Fast constructor for edge mappings that are already frozen.

        Skips :func:`_freeze_edges` entirely — callers guarantee the values
        are non-empty ``frozenset[str]`` taken from an existing hypergraph
        (or otherwise validated).  This is the hot path behind
        :meth:`induced`, :meth:`dedupe` and the simplification pipeline.
        """
        h = cls.__new__(cls)
        h._init_frozen(frozen, name)
        return h

    def __reduce__(self):
        # The cached MappingProxyType view is not picklable, and the cached
        # bitset view is per-process state; rebuild both on unpickling.  The
        # fingerprint (when already computed) is a pure content hash, so it
        # survives the round-trip and saves the receiver a canonical-form pass.
        return (_unpickle, (dict(self._edges), self.name, self._fingerprint))

    # ------------------------------------------------------------------ basic

    @property
    def vertices(self) -> frozenset[str]:
        """The vertex set ``V(H)`` (the union of all edges)."""
        return self._vertices

    @property
    def edges(self) -> Mapping[str, frozenset[str]]:
        """Read-only view of the edge mapping ``{name: vertices}``.

        A single :class:`types.MappingProxyType` built at construction —
        repeated property access inside hot loops is O(1), not an O(m) copy.
        """
        return self._edges_view

    @property
    def edge_names(self) -> tuple[str, ...]:
        """Edge names in insertion order."""
        return tuple(self._edges)

    def edge(self, name: str) -> frozenset[str]:
        """The vertex set of edge ``name``."""
        try:
            return self._edges[name]
        except KeyError:
            raise HypergraphError(f"no edge named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[str]:
        return iter(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def arity(self) -> int:
        """Maximum edge size (the paper calls this the arity of the instance)."""
        if not self._edges:
            return 0
        return max(len(e) for e in self._edges.values())

    def incident_edges(self, vertex: str) -> tuple[str, ...]:
        """Names of the edges containing ``vertex`` (empty if unknown)."""
        return self._incidence.get(vertex, ())

    def degree_of(self, vertex: str) -> int:
        """Number of edges containing ``vertex``."""
        return len(self._incidence.get(vertex, ()))

    # ------------------------------------------------------------- derivation

    def restrict(self, edge_names: Iterable[str], name: str = "") -> "Hypergraph":
        """The subhypergraph consisting of the given edges.

        Per Section 3.1 a subhypergraph is simply a subset of the edges; its
        vertex set is the union of the retained edges.
        """
        return self.induced(edge_names, name=name)

    def induced(self, edge_names: Iterable[str], name: str = "") -> "Hypergraph":
        """Subhypergraph of the given edges via the frozen fast path.

        Unlike constructing ``Hypergraph({n: self.edge(n) ...})``, the
        already-frozen vertex sets are reused directly and never re-validated
        through ``_freeze_edges`` — O(edges kept) dictionary work plus the
        incidence rebuild.
        """
        frozen: dict[str, frozenset[str]] = {}
        for n in edge_names:
            frozen[n] = self.edge(n)
        return Hypergraph._from_frozen(frozen, name=name or self.name)

    def with_edges(
        self, extra: Mapping[str, Iterable[str]], name: str = ""
    ) -> "Hypergraph":
        """A new hypergraph with ``extra`` edges added (names must be fresh)."""
        merged: dict[str, Iterable[str]] = dict(self._edges)
        for edge_name, vertices in extra.items():
            if edge_name in merged:
                raise HypergraphError(f"edge name {edge_name!r} already present")
            merged[edge_name] = vertices
        return Hypergraph(merged, name=name or self.name)

    def dedupe(self, name: str = "") -> "Hypergraph":
        """Drop edges whose vertex set duplicates an earlier edge.

        The paper removes duplicates both on the query level and on the
        hypergraph level (Section 5.6); the first name for each distinct
        vertex set is kept.
        """
        seen: set[frozenset[str]] = set()
        kept: dict[str, frozenset[str]] = {}
        for edge_name, vertex_set in self._edges.items():
            if vertex_set in seen:
                continue
            seen.add(vertex_set)
            kept[edge_name] = vertex_set
        return Hypergraph._from_frozen(kept, name=name or self.name)

    def remove_covered_edges(self, name: str = "") -> "Hypergraph":
        """Drop edges strictly contained in another edge.

        This is a standard, width-preserving simplification for all three
        decomposition notions: any bag covering the superset edge covers the
        subset edge.  Used by the generators and available as preprocessing.
        """
        from repro.core.bitset import HypergraphView

        view = HypergraphView.of(self)
        masks = view.edge_masks
        kept: dict[str, frozenset[str]] = {}
        for i, edge_name in enumerate(view.edge_names):
            mask = masks[i]
            contained = False
            for j, other in enumerate(masks):
                if i == j or mask & ~other:
                    continue  # not a subset of edge j
                if mask != other or j < i:
                    contained = True
                    break
            if not contained:
                kept[edge_name] = self._edges[edge_name]
        return Hypergraph._from_frozen(kept, name=name or self.name)

    # ------------------------------------------------------------- comparison

    def edge_sets(self) -> frozenset[frozenset[str]]:
        """The set of distinct edge vertex-sets (ignores names)."""
        return frozenset(self._edges.values())

    def is_isomorphic_signature(self, other: "Hypergraph") -> bool:
        """Cheap equality up to edge names (*not* vertex renaming)."""
        return self.edge_sets() == other.edge_sets()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        if self is other:
            return True
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        return self._edges == other._edges

    def __hash__(self) -> int:
        # Cached once per instance; immutability makes this safe, and the
        # engine's memoisation hashes the same hypergraph many times.
        if self._hash is None:
            self._hash = hash(frozenset(self._edges.items()))
        return self._hash

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Hypergraph{label}: {self.num_vertices} vertices, "
            f"{self.num_edges} edges, arity {self.arity}>"
        )
