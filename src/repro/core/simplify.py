"""Width-preserving hypergraph simplifications.

The follow-up work on fast GHD computation (Gottlob, Okulmus & Pichler,
IJCAI 2020 — reference [29] of the paper) proposes "new methods to simplify
the input hypergraph" before searching.  This module implements the standard
width-preserving reductions; each is safe for hw, ghw and fhw:

* **duplicate edges** — only one copy of an edge's vertex set matters;
* **covered edges** — an edge contained in another edge is covered by any
  bag covering the larger one;
* **degree-one vertices** — a vertex occurring in exactly one edge of the
  *original* hypergraph can be removed for the width computation, as long as
  the edge does not become empty or a duplicate.  For width >= 1 this never
  changes ghw/fhw (and never the value of hw, though lifted HDs may lose the
  special condition and are reported as GHDs).

:func:`simplify` applies one sound round of the reductions and returns the
reduced hypergraph plus a :class:`SimplificationTrace`;
:func:`lift_decomposition` turns a decomposition of the reduced hypergraph
back into a valid decomposition of the original one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitset import HypergraphView, iter_bits
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph

__all__ = ["SimplificationTrace", "simplify", "lift_decomposition"]


@dataclass
class SimplificationTrace:
    """Everything needed to lift a decomposition back to the original."""

    original: Hypergraph
    reduced: Hypergraph
    #: edges dropped as duplicates/covered: name -> surviving edge name
    dropped_edges: dict[str, str] = field(default_factory=dict)
    #: degree-one vertices removed: vertex -> the edge (original name) it was in
    dropped_vertices: dict[str, str] = field(default_factory=dict)

    @property
    def nontrivial(self) -> bool:
        return bool(self.dropped_edges or self.dropped_vertices)


def _drop_duplicates_and_covered(
    view: HypergraphView, trace: SimplificationTrace
) -> dict[str, int]:
    """Mask pass 1: drop duplicate/covered edges; returns ``{name: mask}``."""
    names = view.edge_names
    masks = view.edge_masks
    kept: dict[str, int] = {}
    for i, name in enumerate(names):
        mask = masks[i]
        survivor: str | None = None
        for j, other in enumerate(masks):
            if i == j or names[j] in trace.dropped_edges or mask & ~other:
                continue  # self, already dropped, or not a subset
            if mask != other or j < i:
                survivor = names[j]
                break
        if survivor is None:
            kept[name] = mask
        else:
            trace.dropped_edges[name] = survivor
    return kept


def _drop_degree_one_vertices(
    view: HypergraphView,
    edges: dict[str, int],
    trace: SimplificationTrace,
) -> dict[str, int]:
    """Remove vertices that are degree-1 *in the original hypergraph*.

    Using original degrees (not degrees after edge dropping) keeps the lift
    sound: a removed vertex provably occurs in exactly one original edge, so
    re-adding it in a single fresh leaf cannot break connectedness.
    """
    degree_one = 0
    for b, incident in enumerate(view.incidence):
        if incident.bit_count() == 1:
            degree_one |= 1 << b
    result = dict(edges)
    for name, mask in edges.items():
        removable = mask & degree_one
        if removable == mask:
            # Never empty an edge; the lowest bit is the lexicographically
            # smallest vertex (vertex bits follow sorted name order).
            removable ^= removable & -removable
        if not removable:
            continue
        shrunk = mask & ~removable
        if any(shrunk == other for n, other in result.items() if n != name):
            continue  # would create a duplicate edge; skip
        result[name] = shrunk
        for b in iter_bits(removable):
            trace.dropped_vertices[view.vertex_names[b]] = name
    return result


def simplify(hypergraph: Hypergraph) -> SimplificationTrace:
    """One sound round of reductions.

    First duplicate/covered edges are dropped (each dropped edge is a subset
    of its *original* survivor), then vertices of original degree 1 are
    removed from the surviving edges.  The reduced hypergraph has the same
    ghw/fhw as the input (and the same hw for hw >= 1); it is never larger.
    Both passes run on the bitset kernel: subset/duplicate tests and the
    degree-one sweep are single AND/compare operations per edge pair.
    """
    trace = SimplificationTrace(hypergraph, hypergraph)
    view = HypergraphView.of(hypergraph)
    edges = _drop_duplicates_and_covered(view, trace)
    edges = _drop_degree_one_vertices(view, edges, trace)
    # Resolve dropped-edge survivor chains (a -> b -> c becomes a -> c).
    for name in list(trace.dropped_edges):
        target = trace.dropped_edges[name]
        while target in trace.dropped_edges:
            target = trace.dropped_edges[target]
        trace.dropped_edges[name] = target
    # Convert back at the Hypergraph boundary, reusing untouched frozensets.
    reduced: dict[str, frozenset[str]] = {}
    for name, mask in edges.items():
        original = hypergraph.edge(name)
        if len(original) == mask.bit_count():
            reduced[name] = original
        else:
            reduced[name] = view.vertex_names_of(mask)
    trace.reduced = Hypergraph._from_frozen(reduced, name=hypergraph.name)
    return trace


def lift_decomposition(
    trace: SimplificationTrace, decomposition: Decomposition
) -> Decomposition:
    """Lift a decomposition of the reduced hypergraph to the original.

    For every surviving edge that lost degree-one vertices, a fresh width-1
    leaf carrying the *full original* edge is hung below a node that covers
    the shrunk edge; the leaf also covers every duplicate/covered edge that
    was dropped in favour of this survivor.  Removed vertices occur in
    exactly one original edge, so the single leaf keeps them connected.
    """
    if decomposition.hypergraph != trace.reduced:
        raise ValueError("decomposition does not belong to the reduced hypergraph")

    # Group lost vertices by owning (surviving) edge name.
    lost_by_edge: dict[str, set[str]] = {}
    for v, owner in trace.dropped_vertices.items():
        lost_by_edge.setdefault(owner, set()).add(v)

    def rebuild(node: DecompositionNode) -> DecompositionNode:
        new_children = [rebuild(c) for c in node.children]
        return DecompositionNode(node.bag, dict(node.cover), new_children)

    root = rebuild(decomposition.root)
    # Lifting preserves GHD/FHD validity; an HD may lose the special
    # condition (the original edges in λ-labels are larger than the reduced
    # ones), so HDs are downgraded to GHDs.
    kind = "GHD" if decomposition.kind == "HD" and trace.dropped_vertices else decomposition.kind
    lifted = Decomposition(trace.original, root, kind=kind)

    reduced_edges = trace.reduced.edges
    for owner, lost in lost_by_edge.items():
        shrunk = reduced_edges[owner]
        target: DecompositionNode | None = None
        for node in lifted.nodes():
            if shrunk <= node.bag and owner in node.cover:
                target = node
                break
        if target is None:
            for node in lifted.nodes():
                if shrunk <= node.bag:
                    target = node
                    break
        if target is None:  # pragma: no cover - coverage guarantees a bag
            raise ValueError(f"no bag covers reduced edge {owner!r}")
        # Hang a fresh leaf covering the full original edge below the target;
        # this keeps the target's width unchanged and adds a width-1 node.
        full_edge = trace.original.edge(owner)
        leaf = DecompositionNode(full_edge | (target.bag & full_edge), {owner: 1.0})
        target.children.append(leaf)
    return lifted
