"""The subedge sets ``f(H, k)`` and ``f_u(H, k)`` (Equations 1 and 2).

The tractable ``Check(GHD, k)`` algorithm of Fischl, Gottlob & Pichler reduces
the GHD check to an HD check on the hypergraph ``H' = (V(H), E(H) ∪ f(H,k))``
where ``f(H,k)`` contains, for each edge ``e``, all subsets of intersections
of ``e`` with unions of up to ``k`` other edges:

    f(H,k) = ⋃_e ⋃_{e1..ej, j<=k} 2^(e ∩ (e1 ∪ ... ∪ ej))            (Eq. 1)

Because ``e ∩ (e1 ∪ ... ∪ ej) = (e ∩ e1) ∪ ... ∪ (e ∩ ej)``, the candidate
sets are exactly unions of at most ``k`` pairwise intersections of ``e`` with
other edges, so we enumerate the (deduplicated) pairwise intersections and
their ≤k-unions, then expand subsets of the *maximal* unions only.

The closure itself runs on the integer-bitset kernel: vertex sets are int
masks, subset tests are ``a & ~b``, and the powerset expansion walks the
submasks of each maximal union with the classic ``sub = (sub - 1) & m``
trick.  :func:`mask_subedge_entries` is the mask-native entry point used by
the decomposition searches (it also reports, per subedge, a parent edge
containing it); :func:`subedge_family` / :func:`augment_with_subedges` keep
the established frozenset API on top of it.

For bounded intersection size ``d`` this is polynomial, but the constant
``2^(d·k)`` bites in practice — the paper reports exactly this as the source
of ``GlobalBIP`` timeouts.  We therefore enforce a configurable budget and
raise :class:`~repro.errors.SubedgeLimitError` when it is exceeded; the
analysis harness treats that as a timeout.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence

from repro.core.bitset import FamilyIndex, iter_bits
from repro.errors import SubedgeLimitError
from repro.perf import counters
from repro.utils.deadline import Deadline

__all__ = [
    "pairwise_intersections",
    "subedges_for_edge",
    "subedge_family",
    "mask_subedge_entries",
    "augment_with_subedges",
    "DEFAULT_SUBEDGE_BUDGET",
]

EdgeFamily = Mapping[str, frozenset[str]]

#: Default cap on the number of generated subedge vertex-sets per hypergraph.
DEFAULT_SUBEDGE_BUDGET = 50_000


def pairwise_intersections(
    edge: frozenset[str], others: Iterable[frozenset[str]]
) -> list[frozenset[str]]:
    """Distinct non-empty intersections of ``edge`` with each of ``others``.

    Intersections subsumed by another intersection are dropped (their subsets
    are generated anyway), which keeps the union enumeration small.
    """
    distinct: set[frozenset[str]] = set()
    for other in others:
        common = edge & other
        if common and common != edge:
            distinct.add(common)
    # Keep only maximal intersections.
    maximal = [
        s for s in distinct if not any(s < t for t in distinct)
    ]
    maximal.sort(key=lambda s: (-len(s), sorted(s)))
    return maximal


def _mask_max_unions(
    intersections: list[int], k: int, budget: int, deadline: Deadline
) -> list[int]:
    """All maximal unions of at most ``k`` of the given intersection masks."""
    unions: set[int] = set()
    for size in range(1, min(k, len(intersections)) + 1):
        for combo in itertools.combinations(intersections, size):
            deadline.check()
            u = 0
            for m in combo:
                u |= m
            unions.add(u)
            if len(unions) > budget:
                raise SubedgeLimitError(
                    f"more than {budget} candidate unions while building f(H,k)"
                )
    return [u for u in unions if not any(u != w and not u & ~w for w in unions)]


def _mask_subedges_for_edge(
    edge: int,
    others: Iterable[int],
    k: int,
    budget: int,
    deadline: Deadline,
) -> set[int]:
    """All proper subedge masks of ``edge`` contributed to ``f(H, k)``."""
    distinct: set[int] = set()
    for other in others:
        common = edge & other
        if common and common != edge:
            distinct.add(common)
    intersections = [
        s for s in distinct if not any(s != t and not s & ~t for t in distinct)
    ]
    result: set[int] = set()
    for union in _mask_max_unions(intersections, k, budget, deadline):
        if 1 << union.bit_count() > 4 * budget:
            raise SubedgeLimitError(
                f"subedge base of size {union.bit_count()} would expand past the budget"
            )
        # Enumerate every non-empty submask of the union.
        sub = union
        while sub:
            result.add(sub)
            if len(result) > budget:
                raise SubedgeLimitError(
                    f"more than {budget} subedges for a single edge"
                )
            sub = (sub - 1) & union
        deadline.check()
    result.discard(edge)
    return result


def subedges_for_edge(
    edge: frozenset[str],
    others: Iterable[frozenset[str]],
    k: int,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> set[frozenset[str]]:
    """All proper subedges of ``edge`` contributed to ``f(H, k)``.

    Returns non-empty vertex sets strictly contained in ``edge`` (the empty
    set and ``edge`` itself are useless as λ-label members: the former covers
    nothing, the latter is already an edge).
    """
    deadline = deadline or Deadline.unlimited()
    other_list = list(others)
    index = FamilyIndex(
        {
            "__edge": edge,
            **{f"__o{i}": frozenset(o) for i, o in enumerate(other_list)},
        }
    )
    edge_mask = index.vertices_mask(edge)
    other_masks = [index.vertices_mask(o) for o in other_list]
    subs = _mask_subedges_for_edge(edge_mask, other_masks, k, budget, deadline)
    return {index.vertex_names_of(s) for s in subs}


def mask_subedge_entries(
    edge_masks: Sequence[int],
    k: int,
    restrict_to: int | None = None,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> list[tuple[int, int]]:
    """Mask-native ``f(H, k)`` / ``f_u(H, k)`` closure (Equations 1 / 2).

    Parameters
    ----------
    edge_masks:
        Vertex masks of the hypergraph's edges, in edge-index order.
    k:
        The width parameter: unions of up to ``k`` other edges are considered.
    restrict_to:
        Edge-index mask of the current component ``H_u``; when given, only
        intersections with *component* edges are taken (Equation 2's
        ``f_u(H, k)``), while subedges are still generated for every edge of
        ``H`` (any edge may appear in a λ-label).
    budget:
        Global cap on the number of produced subedges.

    Returns
    -------
    ``[(subedge_mask, parent_edge_index), ...]`` deduplicated against the
    original edges, sorted larger-first (better λ-label candidates) with the
    mask value as the deterministic tie-break.  The parent is the first edge
    containing the subedge — the "fixing" step of Algorithm 1 swaps subedges
    back to full edges in final GHDs.
    """
    counters.subedge_closures += 1
    deadline = deadline or Deadline.unlimited()
    original = set(edge_masks)
    if restrict_to is None:
        pool = list(range(len(edge_masks)))
    else:
        pool = list(iter_bits(restrict_to))

    produced: set[int] = set()
    for ei, edge in enumerate(edge_masks):
        deadline.check()
        others = [edge_masks[oi] for oi in pool if oi != ei]
        for sub in _mask_subedges_for_edge(edge, others, k, budget, deadline):
            if sub not in original:
                produced.add(sub)
                if len(produced) > budget:
                    raise SubedgeLimitError(
                        f"f(H,{k}) exceeded the budget of {budget} subedges"
                    )

    ordered = sorted(produced, key=lambda s: (-s.bit_count(), s))
    entries: list[tuple[int, int]] = []
    for sub in ordered:
        parent = next(i for i, e in enumerate(edge_masks) if not sub & ~e)
        entries.append((sub, parent))
    return entries


def subedge_family(
    family: EdgeFamily,
    k: int,
    restrict_to: Iterable[str] | None = None,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> list[frozenset[str]]:
    """The full subedge set of Equation 1 (or Equation 2 when restricted).

    Frozenset façade over :func:`mask_subedge_entries` — same parameters as
    before the bitset kernel, same results: a deduplicated list of vertex
    sets sorted deterministically (larger subedges first — better λ-label
    candidates, with the sorted vertex names breaking ties).
    """
    index = FamilyIndex(family)
    if restrict_to is None:
        restrict_mask = None
    else:
        restrict_mask = index.edges_mask(restrict_to)
    entries = mask_subedge_entries(
        index.edge_masks, k, restrict_to=restrict_mask, budget=budget,
        deadline=deadline,
    )
    subs = [index.vertex_names_of(mask) for mask, _ in entries]
    subs.sort(key=lambda s: (-len(s), sorted(s)))
    return subs


def augment_with_subedges(
    family: EdgeFamily,
    k: int,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> tuple[dict[str, frozenset[str]], dict[str, str]]:
    """Build the edge family of ``H' = (V(H), E(H) ∪ f(H,k))``.

    Returns ``(augmented_family, parent_map)`` where ``parent_map`` maps each
    generated subedge name to the name of *one* original edge containing it —
    the "fixing" step of Algorithm 1 (lines 6–10) uses it to swap subedges
    back to full edges in the final GHD.
    """
    index = FamilyIndex(family)
    entries = mask_subedge_entries(
        index.edge_masks, k, budget=budget, deadline=deadline
    )
    augmented: dict[str, frozenset[str]] = dict(family)
    parent_map: dict[str, str] = {}
    for i, (mask, parent_idx) in enumerate(entries):
        sub_name = f"__sub{i}"
        augmented[sub_name] = index.vertex_names_of(mask)
        parent_map[sub_name] = index.edge_names[parent_idx]
    return augmented, parent_map
