"""The subedge sets ``f(H, k)`` and ``f_u(H, k)`` (Equations 1 and 2).

The tractable ``Check(GHD, k)`` algorithm of Fischl, Gottlob & Pichler reduces
the GHD check to an HD check on the hypergraph ``H' = (V(H), E(H) ∪ f(H,k))``
where ``f(H,k)`` contains, for each edge ``e``, all subsets of intersections
of ``e`` with unions of up to ``k`` other edges:

    f(H,k) = ⋃_e ⋃_{e1..ej, j<=k} 2^(e ∩ (e1 ∪ ... ∪ ej))            (Eq. 1)

Because ``e ∩ (e1 ∪ ... ∪ ej) = (e ∩ e1) ∪ ... ∪ (e ∩ ej)``, the candidate
sets are exactly unions of at most ``k`` pairwise intersections of ``e`` with
other edges, so we enumerate the (deduplicated) pairwise intersections and
their ≤k-unions, then expand subsets of the *maximal* unions only.

For bounded intersection size ``d`` this is polynomial, but the constant
``2^(d·k)`` bites in practice — the paper reports exactly this as the source
of ``GlobalBIP`` timeouts.  We therefore enforce a configurable budget and
raise :class:`~repro.errors.SubedgeLimitError` when it is exceeded; the
analysis harness treats that as a timeout.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping

from repro.errors import SubedgeLimitError
from repro.utils.deadline import Deadline

__all__ = [
    "pairwise_intersections",
    "subedges_for_edge",
    "subedge_family",
    "augment_with_subedges",
    "DEFAULT_SUBEDGE_BUDGET",
]

EdgeFamily = Mapping[str, frozenset[str]]

#: Default cap on the number of generated subedge vertex-sets per hypergraph.
DEFAULT_SUBEDGE_BUDGET = 50_000


def pairwise_intersections(
    edge: frozenset[str], others: Iterable[frozenset[str]]
) -> list[frozenset[str]]:
    """Distinct non-empty intersections of ``edge`` with each of ``others``.

    Intersections subsumed by another intersection are dropped (their subsets
    are generated anyway), which keeps the union enumeration small.
    """
    distinct: set[frozenset[str]] = set()
    for other in others:
        common = edge & other
        if common and common != edge:
            distinct.add(common)
    # Keep only maximal intersections.
    maximal = [
        s for s in distinct if not any(s < t for t in distinct)
    ]
    maximal.sort(key=lambda s: (-len(s), sorted(s)))
    return maximal


def _max_unions(
    intersections: list[frozenset[str]], k: int, budget: int, deadline: Deadline
) -> set[frozenset[str]]:
    """All maximal unions of at most ``k`` of the given intersections."""
    unions: set[frozenset[str]] = set()
    for size in range(1, min(k, len(intersections)) + 1):
        for combo in itertools.combinations(intersections, size):
            deadline.check()
            unions.add(frozenset().union(*combo))
            if len(unions) > budget:
                raise SubedgeLimitError(
                    f"more than {budget} candidate unions while building f(H,k)"
                )
    return {u for u in unions if not any(u < w for w in unions)}


def subedges_for_edge(
    edge: frozenset[str],
    others: Iterable[frozenset[str]],
    k: int,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> set[frozenset[str]]:
    """All proper subedges of ``edge`` contributed to ``f(H, k)``.

    Returns non-empty vertex sets strictly contained in ``edge`` (the empty
    set and ``edge`` itself are useless as λ-label members: the former covers
    nothing, the latter is already an edge).
    """
    deadline = deadline or Deadline.unlimited()
    intersections = pairwise_intersections(edge, others)
    result: set[frozenset[str]] = set()
    for union in _max_unions(intersections, k, budget, deadline):
        members = sorted(union)
        if 2 ** len(members) > 4 * budget:
            raise SubedgeLimitError(
                f"subedge base of size {len(members)} would expand past the budget"
            )
        for size in range(1, len(members) + 1):
            for combo in itertools.combinations(members, size):
                result.add(frozenset(combo))
                if len(result) > budget:
                    raise SubedgeLimitError(
                        f"more than {budget} subedges for a single edge"
                    )
        deadline.check()
    result.discard(edge)
    return result


def subedge_family(
    family: EdgeFamily,
    k: int,
    restrict_to: Iterable[str] | None = None,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> list[frozenset[str]]:
    """The full subedge set of Equation 1 (or Equation 2 when restricted).

    Parameters
    ----------
    family:
        The hypergraph's edges ``{name: vertices}``.
    k:
        The width parameter: unions of up to ``k`` other edges are considered.
    restrict_to:
        Edge names of the current component ``H_u``; when given, only
        intersections with *component* edges are taken (Equation 2's
        ``f_u(H, k)``), while subedges are still generated for every edge of
        ``H`` (any edge may appear in a λ-label).
    budget:
        Global cap on the number of produced subedges.

    Returns
    -------
    list of frozensets, deduplicated against the original edges and sorted
    deterministically (larger subedges first — better λ-label candidates).
    """
    deadline = deadline or Deadline.unlimited()
    original = set(family.values())
    if restrict_to is None:
        other_pool: list[tuple[str, frozenset[str]]] = list(family.items())
    else:
        restrict = set(restrict_to)
        other_pool = [(n, vs) for n, vs in family.items() if n in restrict]

    produced: set[frozenset[str]] = set()
    for name, edge in family.items():
        deadline.check()
        others = [vs for n, vs in other_pool if n != name]
        for sub in subedges_for_edge(edge, others, k, budget=budget, deadline=deadline):
            if sub not in original:
                produced.add(sub)
                if len(produced) > budget:
                    raise SubedgeLimitError(
                        f"f(H,{k}) exceeded the budget of {budget} subedges"
                    )
    ordered = sorted(produced, key=lambda s: (-len(s), sorted(s)))
    return ordered


def augment_with_subedges(
    family: EdgeFamily,
    k: int,
    budget: int = DEFAULT_SUBEDGE_BUDGET,
    deadline: Deadline | None = None,
) -> tuple[dict[str, frozenset[str]], dict[str, str]]:
    """Build the edge family of ``H' = (V(H), E(H) ∪ f(H,k))``.

    Returns ``(augmented_family, parent_map)`` where ``parent_map`` maps each
    generated subedge name to the name of *one* original edge containing it —
    the "fixing" step of Algorithm 1 (lines 6–10) uses it to swap subedges
    back to full edges in the final GHD.
    """
    subs = subedge_family(family, k, budget=budget, deadline=deadline)
    augmented: dict[str, frozenset[str]] = dict(family)
    parent_map: dict[str, str] = {}
    for i, sub in enumerate(subs):
        sub_name = f"__sub{i}"
        parent = next(name for name, e in family.items() if sub <= e)
        augmented[sub_name] = sub
        parent_map[sub_name] = parent
    return augmented, parent_map
