"""Structural hypergraph invariants (Section 3.5, analysed in Table 2).

Implemented here:

* ``degree`` — maximum number of edges a vertex occurs in (Definition 4);
* ``intersection_size`` (BIP) — maximum ``|e1 ∩ e2|`` over edge pairs;
* ``multi_intersection_size`` (c-BMIP) — maximum ``|e1 ∩ ... ∩ ec|`` over
  c-subsets of edges (Definition 2), computed by a pruned depth-first search
  rather than brute-force ``C(m, c)`` enumeration;
* ``vc_dimension`` — largest shattered vertex set (Definition 5), computed by
  a branch-and-bound over candidate sets with the standard ``log2(m)`` upper
  bound; exact for the benchmark-scale instances, cooperative w.r.t.
  deadlines for larger ones (the paper also reports VC-dim timeouts).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.hypergraph import Hypergraph
from repro.utils.deadline import Deadline

__all__ = [
    "degree",
    "intersection_size",
    "multi_intersection_size",
    "is_shattered",
    "vc_dimension",
    "HypergraphStatistics",
    "compute_statistics",
]


def degree(h: Hypergraph) -> int:
    """The degree ``deg(H)``: maximum number of edges sharing a vertex."""
    if h.num_vertices == 0:
        return 0
    return max(h.degree_of(v) for v in h.vertices)


def intersection_size(h: Hypergraph) -> int:
    """The intersection size (BIP parameter ``d`` for ``c = 2``)."""
    return multi_intersection_size(h, 2)


def multi_intersection_size(
    h: Hypergraph, c: int, deadline: Deadline | None = None
) -> int:
    """The c-multi-intersection size: ``max |⋂ E'|`` over ``E' ⊆ E, |E'| = c``.

    A depth-first search over edges ordered by decreasing size carries the
    running intersection and prunes branches whose intersection is already
    no larger than the best found — on benchmark-like instances this visits
    a tiny fraction of the ``C(m, c)`` subsets.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    deadline = deadline or Deadline.unlimited()
    edges = sorted(h.edges.values(), key=len, reverse=True)
    if len(edges) < c:
        return 0
    if c == 1:
        return h.arity

    best = 0

    def search(start: int, depth: int, current: frozenset[str]) -> None:
        nonlocal best
        deadline.check()
        if depth == c:
            if len(current) > best:
                best = len(current)
            return
        remaining = c - depth
        for i in range(start, len(edges) - remaining + 1):
            nxt = current & edges[i]
            # Prune: the intersection only shrinks below.
            if len(nxt) <= best:
                continue
            search(i + 1, depth + 1, nxt)

    for i in range(len(edges) - c + 1):
        if len(edges[i]) <= best:
            break  # edges sorted by size: no later start can beat `best`
        search(i + 1, 1, edges[i])
    return best


def is_shattered(h: Hypergraph, vertex_set: frozenset[str]) -> bool:
    """Whether ``vertex_set`` is shattered: ``E(H)|X = 2^X`` (Definition 5)."""
    target = 2 ** len(vertex_set)
    traces = {vertex_set & e for e in h.edges.values()}
    return len(traces) >= target and all(
        frozenset(sub) in traces
        for size in range(len(vertex_set) + 1)
        for sub in itertools.combinations(sorted(vertex_set), size)
    )


def vc_dimension(h: Hypergraph, deadline: Deadline | None = None) -> int:
    """The VC-dimension of ``H``: the largest cardinality of a shattered set.

    Uses the Sauer–Shelah bound ``VC(H) <= log2(|distinct edges|)`` plus a
    candidate filter: a vertex can participate in a shattered set of size
    ``>= 1`` only if it lies in some edge and outside some edge, and any pair
    in a shattered set must appear together and separated.  The remaining
    search enumerates candidate sets in increasing size, reusing shattered
    sets of size ``s`` as seeds for size ``s + 1`` (every subset of a
    shattered set is shattered).
    """
    deadline = deadline or Deadline.unlimited()
    edges = list(h.edge_sets())
    if not edges:
        return 0
    upper = int(math.floor(math.log2(len(edges) + 1)))  # +1: empty trace via any X - e
    upper = max(upper, 1)

    vertices = sorted(h.vertices)
    # Size-1 shattered sets: v in some edge and (v missing from some edge or
    # the empty trace achievable). X={v}: traces must include {} and {v}.
    level: list[frozenset[str]] = []
    for v in vertices:
        traces = {frozenset([v]) & e for e in edges}
        if len(traces) == 2:
            level.append(frozenset([v]))
    if not level:
        return 0

    best = 1
    while best < upper and level:
        deadline.check()
        next_level: set[frozenset[str]] = set()
        for base in level:
            anchor = max(base)
            for v in vertices:
                if v <= anchor or v in base:
                    continue
                candidate = base | {v}
                deadline.check()
                if is_shattered(h, candidate):
                    next_level.add(candidate)
        if not next_level:
            break
        best += 1
        level = sorted(next_level, key=sorted)
    return best


@dataclass(frozen=True)
class HypergraphStatistics:
    """All structural metrics the HyperBench web tool exposes per instance."""

    name: str
    num_vertices: int
    num_edges: int
    arity: int
    degree: int
    bip: int
    bmip3: int
    bmip4: int
    vc_dim: int

    def as_row(self) -> tuple[object, ...]:
        """Row form used by the experiment tables."""
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.arity,
            self.degree,
            self.bip,
            self.bmip3,
            self.bmip4,
            self.vc_dim,
        )

    #: Metric columns as exported by :meth:`as_row` (after the name).
    METRICS = (
        "vertices",
        "edges",
        "arity",
        "degree",
        "bip",
        "3-BMIP",
        "4-BMIP",
        "VC-dim",
    )


def compute_statistics(
    h: Hypergraph, deadline: Deadline | None = None
) -> HypergraphStatistics:
    """Compute the full metric record for one hypergraph."""
    deadline = deadline or Deadline.unlimited()
    return HypergraphStatistics(
        name=h.name,
        num_vertices=h.num_vertices,
        num_edges=h.num_edges,
        arity=h.arity,
        degree=degree(h),
        bip=intersection_size(h),
        bmip3=multi_intersection_size(h, 3, deadline),
        bmip4=multi_intersection_size(h, 4, deadline),
        vc_dim=vc_dimension(h, deadline),
    )
