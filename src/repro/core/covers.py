"""Integral and fractional edge covers (Section 3.2).

The fractional cover number ``ρ*(X)`` of a vertex set ``X`` is the optimum of
the covering LP

    minimise   Σ_e γ(e)
    subject to Σ_{e ∋ v} γ(e) ≥ 1   for every v ∈ X,  γ ≥ 0,

solved here with :func:`scipy.optimize.linprog` (HiGHS).  ``ImproveHD`` and
``FracImproveHD`` (Section 6.5) call this once per bag; the width of an FHD is
the maximum bag weight.

Integral covers (the λ-labels of HDs/GHDs) are handled by a small greedy +
exact search used by validators and by the relational engine's cost model.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping

import numpy as np
from scipy.optimize import linprog

from repro.core.bitset import FamilyIndex
from repro.errors import HypergraphError
from repro.perf import counters

__all__ = [
    "FractionalCover",
    "fractional_cover",
    "fractional_cover_number",
    "covered_vertices",
    "is_integral_cover",
    "minimum_integral_cover",
]

EdgeFamily = Mapping[str, frozenset[str]]

#: Weights below this threshold are dropped from reported covers; LP solvers
#: return values like 1e-12 for variables that are structurally zero.
_WEIGHT_EPSILON = 1e-9


class FractionalCover:
    """A fractional edge cover: edge weights plus the resulting total weight."""

    __slots__ = ("weights", "weight")

    def __init__(self, weights: Mapping[str, float]):
        self.weights = {
            name: float(w) for name, w in weights.items() if w > _WEIGHT_EPSILON
        }
        self.weight = float(sum(self.weights.values()))

    def __repr__(self) -> str:
        return f"FractionalCover(weight={self.weight:.4f}, support={len(self.weights)})"


def covered_vertices(
    family: EdgeFamily, weights: Mapping[str, float], tolerance: float = 1e-7
) -> frozenset[str]:
    """The set ``B(γ)`` of vertices receiving total weight ≥ 1."""
    totals: dict[str, float] = {}
    for name, w in weights.items():
        if w <= 0:
            continue
        for v in family[name]:
            totals[v] = totals.get(v, 0.0) + w
    return frozenset(v for v, t in totals.items() if t >= 1.0 - tolerance)


def fractional_cover(
    family: EdgeFamily,
    bag: Iterable[str],
    allowed: Iterable[str] | None = None,
) -> FractionalCover:
    """Optimal fractional edge cover of ``bag`` by edges of ``family``.

    Parameters
    ----------
    family:
        Edge mapping ``{name: vertices}`` (typically ``hypergraph.edges``).
    bag:
        Vertices to cover.
    allowed:
        Restrict the cover's support to these edge names (defaults to all).

    Raises
    ------
    HypergraphError
        If some bag vertex occurs in no allowed edge (the LP is infeasible).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return FractionalCover({})

    if allowed is None:
        candidates = [name for name, e in family.items() if e & bag_set]
    else:
        candidates = [name for name in allowed if family[name] & bag_set]

    uncoverable = bag_set - frozenset().union(*(family[n] for n in candidates)) \
        if candidates else bag_set
    if uncoverable:
        raise HypergraphError(
            f"vertices {sorted(uncoverable)} occur in no allowed edge; "
            "the covering LP is infeasible"
        )

    vertex_index = {v: i for i, v in enumerate(sorted(bag_set))}
    n_vars = len(candidates)
    n_rows = len(vertex_index)
    # linprog minimises c @ x subject to A_ub @ x <= b_ub; covering constraints
    # Σ γ(e) >= 1 become -Σ γ(e) <= -1.
    matrix = np.zeros((n_rows, n_vars))
    for j, name in enumerate(candidates):
        for v in family[name] & bag_set:
            matrix[vertex_index[v], j] = -1.0
    result = linprog(
        c=np.ones(n_vars),
        A_ub=matrix,
        b_ub=-np.ones(n_rows),
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - guarded by feasibility check
        raise HypergraphError(f"covering LP failed: {result.message}")
    return FractionalCover(dict(zip(candidates, result.x)))


def fractional_cover_number(family: EdgeFamily, bag: Iterable[str]) -> float:
    """The fractional cover number ``ρ*(bag)`` (just the optimal weight)."""
    return fractional_cover(family, bag).weight


def is_integral_cover(
    family: EdgeFamily, cover: Iterable[str], bag: Iterable[str]
) -> bool:
    """Whether the edges named in ``cover`` jointly contain every bag vertex."""
    covered: set[str] = set()
    for name in cover:
        covered.update(family[name])
    return frozenset(bag) <= covered


def minimum_integral_cover(
    family: EdgeFamily,
    bag: Iterable[str],
    max_size: int | None = None,
) -> tuple[str, ...] | None:
    """A minimum-cardinality integral edge cover of ``bag``.

    Exact search: greedy upper bound first, then exhaustive search over
    combinations below the greedy size.  Intended for the small bags that
    occur in decompositions (``max_size`` defaults to the greedy bound).
    Returns ``None`` when no cover of size ``<= max_size`` exists.
    """
    counters.cover_enumerations += 1
    bag_set = frozenset(bag)
    if not bag_set:
        return ()
    # Mask-native search via a one-off dense index: the exhaustive phase
    # tests O(candidates^size) combinations, each now a few AND/OR ops.
    index = FamilyIndex(family)
    bit = index.vertex_bit
    bag_mask = 0
    for v in bag_set:
        b = bit.get(v)
        if b is None:
            return None  # vertex occurs in no edge at all
        bag_mask |= 1 << b
    masks = index.edge_masks
    names = index.edge_names
    candidates = [j for j in range(len(masks)) if masks[j] & bag_mask]
    union = 0
    for j in candidates:
        union |= masks[j]
    if bag_mask & ~union:
        return None

    # Greedy: repeatedly take the edge covering most uncovered vertices
    # (name tie-break, matching the historical frozenset behaviour).
    uncovered = bag_mask
    greedy: list[int] = []
    while uncovered:
        best = max(
            candidates,
            key=lambda j: ((masks[j] & uncovered).bit_count(), names[j]),
        )
        gain = masks[best] & uncovered
        if not gain:  # pragma: no cover - cannot happen given the union check
            return None
        greedy.append(best)
        uncovered &= ~gain

    bound = len(greedy) if max_size is None else min(len(greedy), max_size)

    # Exhaustive improvement below the greedy bound.
    for size in range(1, bound):
        for combo in itertools.combinations(candidates, size):
            covered = 0
            for j in combo:
                covered |= masks[j]
            if not bag_mask & ~covered:
                return tuple(names[j] for j in combo)
    if max_size is not None and len(greedy) > max_size:
        for combo in itertools.combinations(candidates, max_size):
            covered = 0
            for j in combo:
                covered |= masks[j]
            if not bag_mask & ~covered:
                return tuple(names[j] for j in combo)
        return None
    return tuple(names[j] for j in greedy)
