"""Integer-bitset compute kernel for the Section 3.3 primitives.

The decomposition searches spend almost all of their time in two loops:
computing ``[U]``-components of an edge family and enumerating ≤k edge
subsets that cover a connector.  The frozenset implementations in
:mod:`repro.core.components` / :mod:`repro.decomp.detkdecomp` churn through
hash-based set operations over vertex *names*; this module replaces them with
dense integer masks.

* A :class:`HypergraphView` maps the vertices and edges of one
  :class:`~repro.core.hypergraph.Hypergraph` to bit positions **once** (the
  view is cached on the hypergraph), after which every vertex set and every
  edge set is a plain Python ``int`` and union / intersection / difference /
  subset become single CPU-friendly bitwise operations.
* A :class:`FamilyIndex` does the same for a free-standing edge family
  mapping (``{name: frozenset}``), which is what the subedge closure, cover
  search and simplification pipeline operate on.
* The ``mask_*`` functions are the mask-native counterparts of
  :func:`repro.core.components.components` / ``separate`` /
  ``is_balanced_separator`` and of the separator enumeration
  :func:`repro.decomp.detkdecomp.covering_combinations`.

The frozenset implementations remain in place as the *reference kernel*: the
equivalence suite (``tests/test_bitset.py``) checks the two agree, and the
microbench harness (:mod:`repro.perf.harness`) measures the gap.

Conventions: vertex bit ``i`` is the ``i``-th vertex in sorted name order;
edge bit ``j`` is the ``j``-th edge in insertion order.  Functions that take
a list of *member masks* (vertex masks of the members of an extended
subhypergraph) return component masks over the member *positions*.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.perf import counters
from repro.utils.deadline import Deadline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.decomposition import Decomposition
    from repro.core.hypergraph import Hypergraph

__all__ = [
    "HypergraphView",
    "FamilyIndex",
    "PackedHypergraph",
    "pack_decomposition",
    "unpack_decomposition",
    "iter_bits",
    "mask_components",
    "mask_components_from",
    "mask_separate",
    "mask_is_balanced",
    "mask_covering_combinations",
    "mask_minimum_cover",
    "scoped_candidates",
    "dedupe_effective",
    "ComponentCache",
]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _BitIndex:
    """Shared vertex/edge indexing machinery of the two view classes."""

    __slots__ = (
        "vertex_names",
        "vertex_bit",
        "edge_names",
        "edge_bit",
        "edge_masks",
        "incidence",
        "all_vertices",
        "all_edges",
    )

    def _build(self, named_edges: Iterable[tuple[str, frozenset[str]]]) -> None:
        pairs = list(named_edges)
        vertex_names: list[str] = sorted({v for _, e in pairs for v in e})
        self.vertex_names = tuple(vertex_names)
        self.vertex_bit = {v: i for i, v in enumerate(vertex_names)}
        self.edge_names = tuple(name for name, _ in pairs)
        self.edge_bit = {name: j for j, name in enumerate(self.edge_names)}
        incidence = [0] * len(vertex_names)
        masks: list[int] = []
        for j, (_, edge) in enumerate(pairs):
            m = 0
            for v in edge:
                b = self.vertex_bit[v]
                m |= 1 << b
                incidence[b] |= 1 << j
            masks.append(m)
        self.edge_masks = tuple(masks)
        self.incidence = tuple(incidence)
        self.all_vertices = (1 << len(vertex_names)) - 1
        self.all_edges = (1 << len(masks)) - 1

    # -------------------------------------------------------- conversions

    def vertices_mask(self, names: Iterable[str]) -> int:
        """Vertex-name iterable → vertex mask."""
        bit = self.vertex_bit
        m = 0
        for v in names:
            m |= 1 << bit[v]
        return m

    def edges_mask(self, names: Iterable[str]) -> int:
        """Edge-name iterable → edge mask."""
        bit = self.edge_bit
        m = 0
        for n in names:
            m |= 1 << bit[n]
        return m

    def vertex_names_of(self, mask: int) -> frozenset[str]:
        """Vertex mask → frozenset of names (the Decomposition boundary)."""
        names = self.vertex_names
        return frozenset(names[i] for i in iter_bits(mask))

    def edge_names_of(self, mask: int) -> frozenset[str]:
        """Edge mask → frozenset of edge names."""
        names = self.edge_names
        return frozenset(names[i] for i in iter_bits(mask))

    def union_vertices(self, edge_mask: int) -> int:
        """Union of the vertex masks of the edges in ``edge_mask``."""
        masks = self.edge_masks
        m = 0
        while edge_mask:
            low = edge_mask & -edge_mask
            m |= masks[low.bit_length() - 1]
            edge_mask ^= low
        return m

    def degree(self, vertex_bit: int) -> int:
        """Number of edges containing the vertex with bit index ``vertex_bit``."""
        return self.incidence[vertex_bit].bit_count()


class HypergraphView(_BitIndex):
    """Dense-index view of one hypergraph, cached on the hypergraph.

    Use :meth:`of` instead of the constructor: building the view is O(total
    edge size) and every algorithm on the same hypergraph shares one view, so
    the index is computed exactly once per hypergraph.
    """

    __slots__ = ("hypergraph",)

    def __init__(self, hypergraph: "Hypergraph"):
        self.hypergraph = hypergraph
        self._build((name, hypergraph.edge(name)) for name in hypergraph.edge_names)

    @classmethod
    def of(cls, hypergraph: "Hypergraph") -> "HypergraphView":
        """The cached view of ``hypergraph`` (built on first use)."""
        view = hypergraph._view
        if view is None:
            view = cls(hypergraph)
            hypergraph._view = view
        return view

    @classmethod
    def _from_packed(
        cls, hypergraph: "Hypergraph", packed: "PackedHypergraph"
    ) -> "HypergraphView":
        """Rebuild a view from packed tables without re-deriving the index.

        The packed name tables and edge masks are adopted as-is (they came
        from a view in the first place, so the sorted-vertex / insertion-edge
        conventions hold); only the incidence lists are re-derived, a single
        pass over the set bits.
        """
        view = cls.__new__(cls)
        view.hypergraph = hypergraph
        view.vertex_names = packed.vertex_names
        view.vertex_bit = {v: i for i, v in enumerate(packed.vertex_names)}
        view.edge_names = packed.edge_names
        view.edge_bit = {name: j for j, name in enumerate(packed.edge_names)}
        view.edge_masks = packed.edge_masks
        incidence = [0] * len(packed.vertex_names)
        for j, mask in enumerate(packed.edge_masks):
            for b in iter_bits(mask):
                incidence[b] |= 1 << j
        view.incidence = tuple(incidence)
        view.all_vertices = (1 << len(packed.vertex_names)) - 1
        view.all_edges = (1 << len(packed.edge_masks)) - 1
        return view


class FamilyIndex(_BitIndex):
    """Dense-index view of a free-standing edge family mapping."""

    __slots__ = ()

    def __init__(self, family: Mapping[str, frozenset[str]]):
        self._build(family.items())


# ------------------------------------------------------------ wire format


class PackedHypergraph:
    """Compact, picklable wire form of one hypergraph and its dense view.

    The engine's worker protocol ships these instead of full
    :class:`~repro.core.hypergraph.Hypergraph` objects: the name tables plus
    one integer mask per edge are all a worker needs to rebuild both the
    hypergraph *and* its :class:`HypergraphView` — without re-validating the
    edges (``_freeze_edges``), re-deriving the view, or re-hashing the
    canonical form (the content ``fingerprint`` rides along, so the store
    key is free on the other side).

    Conventions match :class:`HypergraphView`: vertex bit ``i`` is
    ``vertex_names[i]``, edge bit ``j`` is ``edge_names[j]``, and
    ``edge_masks[j]`` is edge ``j``'s vertex mask.
    """

    __slots__ = ("vertex_names", "edge_names", "edge_masks", "name", "fingerprint")

    def __init__(
        self,
        vertex_names: tuple[str, ...],
        edge_names: tuple[str, ...],
        edge_masks: tuple[int, ...],
        name: str,
        fingerprint: str,
    ):
        self.vertex_names = vertex_names
        self.edge_names = edge_names
        self.edge_masks = edge_masks
        self.name = name
        self.fingerprint = fingerprint

    @classmethod
    def pack(cls, hypergraph: "Hypergraph") -> "PackedHypergraph":
        """Pack one hypergraph (reusing its cached view and fingerprint)."""
        # Engine-layer import kept local: the fingerprint function caches on
        # the hypergraph, so repeated packs of one instance hash only once.
        from repro.engine.fingerprint import fingerprint

        view = HypergraphView.of(hypergraph)
        return cls(
            view.vertex_names,
            view.edge_names,
            view.edge_masks,
            hypergraph.name,
            fingerprint(hypergraph),
        )

    def unpack(self) -> "Hypergraph":
        """Rebuild the named hypergraph with its view and fingerprint cached.

        The frozen edge mapping is reconstructed straight from the masks
        (no ``_freeze_edges`` validation pass), the view is rebuilt from the
        packed tables (no sorting, no incidence-from-names derivation), and
        the fingerprint is installed so the first store lookup on the other
        side of the pipe does not recompute the canonical form.
        """
        from repro.core.hypergraph import Hypergraph

        vertex_names = self.vertex_names
        frozen = {
            name: frozenset(vertex_names[b] for b in iter_bits(mask))
            for name, mask in zip(self.edge_names, self.edge_masks)
        }
        hypergraph = Hypergraph._from_frozen(frozen, self.name)
        hypergraph._fingerprint = self.fingerprint
        hypergraph._view = HypergraphView._from_packed(hypergraph, self)
        return hypergraph

    def __reduce__(self):
        return (
            PackedHypergraph,
            (self.vertex_names, self.edge_names, self.edge_masks,
             self.name, self.fingerprint),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedHypergraph):
            return NotImplemented
        return (
            self.vertex_names == other.vertex_names
            and self.edge_names == other.edge_names
            and self.edge_masks == other.edge_masks
            and self.name == other.name
            and self.fingerprint == other.fingerprint
        )

    def __hash__(self) -> int:
        return hash((self.vertex_names, self.edge_names, self.edge_masks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<PackedHypergraph{label}: {len(self.vertex_names)} vertices, "
            f"{len(self.edge_names)} edges>"
        )


def pack_decomposition(decomposition: "Decomposition") -> tuple:
    """Serialize a decomposition into the mask wire form.

    Bags become vertex masks over the decomposed hypergraph's view; cover
    entries become ``(edge index, weight)`` pairs (post-``_fix_covers``
    labels always name original edges; unknown names — defensively — travel
    as strings).  The hypergraph itself is *not* part of the payload: the
    receiving side re-names against its own copy, which is the whole point —
    a worker's yes-answer no longer drags a pickled hypergraph through the
    result pipe.
    """
    view = HypergraphView.of(decomposition.hypergraph)
    vertex_bit = view.vertex_bit
    edge_bit = view.edge_bit

    def pack_node(node) -> tuple:
        bag = 0
        for v in node.bag:
            bag |= 1 << vertex_bit[v]
        cover = tuple(
            (edge_bit.get(name, name), weight) for name, weight in node.cover.items()
        )
        return (bag, cover, tuple(pack_node(c) for c in node.children))

    return (decomposition.kind, pack_node(decomposition.root))


def unpack_decomposition(payload: tuple, hypergraph: "Hypergraph") -> "Decomposition":
    """Rebuild a :func:`pack_decomposition` payload against ``hypergraph``."""
    from repro.core.decomposition import Decomposition, DecompositionNode

    view = HypergraphView.of(hypergraph)
    edge_names = view.edge_names
    kind, root = payload

    def unpack_node(node_payload: tuple) -> DecompositionNode:
        bag, cover, children = node_payload
        return DecompositionNode(
            view.vertex_names_of(bag),
            {
                (edge_names[key] if isinstance(key, int) else key): weight
                for key, weight in cover
            },
            [unpack_node(c) for c in children],
        )

    return Decomposition(hypergraph, unpack_node(root), kind=kind)


def scoped_candidates(
    edge_masks: Sequence[int],
    scope: int,
    names: Sequence[str],
    seen_effective: set[int],
) -> tuple[list[int], list[int]]:
    """λ-candidate edges for a scope: sorted, deduplicated, effective masks.

    Shared by the GHD searches: edges intersecting ``scope``, ordered by
    descending effective coverage (name tie-break), keeping one
    representative per *effective mask* (``edge ∩ scope``) — candidates
    sharing an effective mask yield identical bags, connector coverage and
    child states, so the others are redundant.  ``seen_effective`` is
    updated in place so a subsequent subedge phase can dedupe against it.
    Returns ``(edge_indices, effective_masks)``.
    """
    order = sorted(
        (i for i in range(len(edge_masks)) if edge_masks[i] & scope),
        key=lambda i: (-(edge_masks[i] & scope).bit_count(), names[i]),
    )
    indices: list[int] = []
    effective: list[int] = []
    for i in order:
        mask = edge_masks[i] & scope
        if mask in seen_effective:
            continue
        seen_effective.add(mask)
        indices.append(i)
        effective.append(mask)
    return indices, effective


def dedupe_effective(
    pairs: Iterable[tuple[int, int]],
    scope: int,
    seen_effective: set[int],
) -> tuple[list[int], list[int]]:
    """One representative per effective mask among ``(key, mask)`` pairs.

    Used for the subedge phase: a subedge whose effective mask a full edge
    (or an earlier subedge) already provides cannot produce a new bag.
    Returns ``(keys, effective_masks)``; updates ``seen_effective``.
    """
    keys: list[int] = []
    effective: list[int] = []
    for key, mask in pairs:
        eff = mask & scope
        if not eff or eff in seen_effective:
            continue
        seen_effective.add(eff)
        keys.append(key)
        effective.append(eff)
    return keys, effective


class ComponentCache:
    """Memoised per-component vertex unions and component-entry lists.

    Search states recur (failure memos aside, sibling branches revisit the
    same component masks), so the union-of-vertices and the
    ``(position bit, mask)`` entry lists handed to
    :func:`mask_components_from` are cached per component edge-mask.
    """

    __slots__ = ("_index", "_vertices", "_entries")

    def __init__(self, index: _BitIndex):
        self._index = index
        self._vertices: dict[int, int] = {}
        self._entries: dict[int, list[tuple[int, int]]] = {}

    def vertices(self, comp: int) -> int:
        cached = self._vertices.get(comp)
        if cached is None:
            cached = self._index.union_vertices(comp)
            self._vertices[comp] = cached
        return cached

    def entries(self, comp: int) -> list[tuple[int, int]]:
        cached = self._entries.get(comp)
        if cached is None:
            masks = self._index.edge_masks
            cached = [(1 << i, masks[i]) for i in iter_bits(comp)]
            self._entries[comp] = cached
        return cached


# ------------------------------------------------------------- components


def mask_components(
    member_masks: Sequence[int],
    separator: int,
    active: int | None = None,
) -> list[list[int]]:
    """The [U]-components of a member family w.r.t. the vertex mask ``separator``.

    ``member_masks[p]`` is the vertex mask of member ``p``; ``active``
    restricts the family to a subset of member positions (default: all).
    Members whose vertices all lie inside the separator are absorbed and
    belong to no component, exactly as in
    :func:`repro.core.components.components`.

    Returns ``[(members, outside), ...]`` where ``members`` is the mask of
    member positions in the component and ``outside`` the union of their
    vertices outside the separator.  Components are ordered by their smallest
    member position (matching the reference's first-seen order).
    """
    if active is None:
        active = (1 << len(member_masks)) - 1
    entries: list[tuple[int, int]] = []
    rem = active
    while rem:
        low = rem & -rem
        rem ^= low
        entries.append((low, member_masks[low.bit_length() - 1]))
    return mask_components_from(entries, separator)


def mask_components_from(
    entries: Sequence[tuple[int, int]], separator: int
) -> list[list[int]]:
    """:func:`mask_components` over precomputed ``(position bit, mask)`` pairs.

    The searches cache the entry list per component state, so the per-call
    work reduces to one AND per member plus the incremental merge: partial
    components stay pairwise vertex-disjoint, hence each new member can merge
    every component its outside-vertices touch in a single pass (components
    it connects only transitively already share vertices with one it touches
    directly).  Returns ``[members, outside]`` pairs (internal lists — do not
    mutate).
    """
    counters.components_calls += 1
    comps: list[list[int]] = []  # [members mask, outside vertices mask]
    notsep = ~separator
    for bit, mask in entries:
        outside = mask & notsep
        if not outside:
            continue  # absorbed by the separator bag
        hit: list[int] | None = None
        multi = False
        for comp in comps:
            if comp[1] & outside:
                if hit is None:
                    hit = comp
                else:
                    multi = True
                    break
        if hit is None:
            comps.append([bit, outside])
        elif not multi:
            hit[0] |= bit
            hit[1] |= outside
        else:
            members = bit
            keep: list[list[int]] = []
            for comp in comps:
                if comp[1] & outside:
                    members |= comp[0]
                    outside |= comp[1]
                else:
                    keep.append(comp)
            keep.append([members, outside])
            comps = keep
    if len(comps) > 1:
        comps.sort(key=lambda c: c[0] & -c[0])
    return comps


def mask_separate(
    member_masks: Sequence[int],
    separator: int,
    active: int | None = None,
) -> tuple[list[tuple[int, int]], int]:
    """Like :func:`mask_components` plus the mask of absorbed members."""
    if active is None:
        active = (1 << len(member_masks)) - 1
    comps = mask_components(member_masks, separator, active)
    in_component = 0
    for members, _ in comps:
        in_component |= members
    return comps, active & ~in_component


def mask_is_balanced(
    member_masks: Sequence[int],
    separator: int,
    total: int | None = None,
    active: int | None = None,
) -> bool:
    """Definition 7 on masks: no component holds more than half the members."""
    counters.balance_checks += 1
    if active is None:
        active = (1 << len(member_masks)) - 1
    if total is None:
        total = active.bit_count()
    limit = total / 2
    return all(
        members.bit_count() <= limit
        for members, _ in mask_components(member_masks, separator, active)
    )


# ------------------------------------------------------------ enumeration


def mask_covering_combinations(
    candidate_masks: Sequence[int],
    n_primary: int,
    conn: int,
    k: int,
    deadline: Deadline,
    require_primary: bool = True,
) -> Iterator[tuple[int, ...]]:
    """Mask-native :func:`repro.decomp.detkdecomp.covering_combinations`.

    ``candidate_masks`` holds the vertex masks of the candidates, primaries
    first (``n_primary`` of them); yields index tuples into that list whose
    masks jointly cover the connector mask ``conn``, with the same pruning
    (suffix-max coverage gain bounds the reachable remainder) and the same
    enumeration order as the reference.
    """
    counters.cover_enumerations += 1
    n = len(candidate_masks)
    if not n or (require_primary and not n_primary):
        return iter(())
    gains = [(m & conn).bit_count() for m in candidate_masks]
    suffix_max = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_max[i] = max(suffix_max[i + 1], gains[i])

    # Primaries come first, so in DFS pre-order the first member of every
    # valid combo is a primary whenever one is required — which reduces the
    # common k=1 / k=2 cases to plain loops with no frame bookkeeping.
    first_end = n_primary if require_primary else n

    if k == 1:

        def generate_k1() -> Iterator[tuple[int, ...]]:
            for i in range(first_end):
                if not conn & ~candidate_masks[i]:
                    yield (i,)

        return generate_k1()

    if k == 2:

        def generate_k2() -> Iterator[tuple[int, ...]]:
            tick = 0
            for i in range(first_end):
                tick += 1
                if not tick & 31:
                    deadline.check()
                uncovered = conn & ~candidate_masks[i]
                if not uncovered:
                    yield (i,)
                    for j in range(i + 1, n):
                        yield (i, j)
                else:
                    need = uncovered.bit_count()
                    for j in range(i + 1, n):
                        # suffix_max is non-increasing: once it cannot cover
                        # the remainder, no later candidate can either.
                        if suffix_max[j] < need:
                            break
                        if not uncovered & ~candidate_masks[j]:
                            yield (i, j)

        return generate_k2()

    if k == 3:

        def generate_k3() -> Iterator[tuple[int, ...]]:
            # Explicit triple loop in DFS pre-order, mirroring the k=1/k=2
            # fast paths: the suffix-max prune is applied with 2 slots left
            # after the first pick and 1 after the second, exactly as the
            # general DFS would at depths 1 and 2.
            tick = 0
            for i in range(first_end):
                tick += 1
                if not tick & 31:
                    deadline.check()
                uncovered1 = conn & ~candidate_masks[i]
                if not uncovered1:
                    yield (i,)
                need1 = uncovered1.bit_count()
                for j in range(i + 1, n):
                    # suffix_max is non-increasing, so once two slots cannot
                    # cover the remainder no later pair can either.
                    if need1 and suffix_max[j] * 2 < need1:
                        break
                    tick += 1
                    if not tick & 31:
                        deadline.check()
                    uncovered2 = uncovered1 & ~candidate_masks[j]
                    if not uncovered2:
                        yield (i, j)
                        for m in range(j + 1, n):
                            yield (i, j, m)
                    else:
                        need2 = uncovered2.bit_count()
                        for m in range(j + 1, n):
                            # suffix_max is non-increasing: once it cannot
                            # cover the remainder, no later candidate can.
                            if suffix_max[m] < need2:
                                break
                            if not uncovered2 & ~candidate_masks[m]:
                                yield (i, j, m)

        return generate_k3()

    def generate() -> Iterator[tuple[int, ...]]:
        # Explicit-stack DFS (pre-order, ascending candidate index — children
        # are pushed in descending order so the smallest pops first).  One
        # generator frame total instead of one per recursion level, and
        # deadline polling gated to every 32nd node: the node count *is* the
        # work unit.
        tick = 0
        stack: list[tuple[tuple[int, ...], int, int, bool]] = [
            ((), 0, conn, not require_primary)
        ]
        pop = stack.pop
        push = stack.append
        while stack:
            tick += 1
            if not tick & 31:
                deadline.check()
            chosen, start, uncovered, has_primary = pop()
            if chosen and has_primary and not uncovered:
                yield chosen
            depth = len(chosen)
            if depth == k:
                continue
            slots = k - depth
            need = uncovered.bit_count()
            # Without a primary yet, only primary candidates may extend.
            end = n if has_primary else n_primary
            for i in range(end - 1, start - 1, -1):
                # Prune: remaining slots cannot cover the connector remainder.
                if need and suffix_max[i] * slots < need:
                    continue
                push(
                    (
                        chosen + (i,),
                        i + 1,
                        uncovered & ~candidate_masks[i],
                        has_primary or i < n_primary,
                    )
                )

    return generate()


def mask_minimum_cover(
    candidate_masks: Sequence[int],
    bag: int,
    max_size: int | None = None,
) -> tuple[int, ...] | None:
    """A minimum-cardinality cover of the vertex mask ``bag``.

    Mask counterpart of :func:`repro.core.covers.minimum_integral_cover`:
    greedy upper bound, then exhaustive search below it.  Returns candidate
    indices, ``None`` when no cover of size ≤ ``max_size`` exists.  Greedy
    ties break towards the highest index (callers pass name-sorted
    candidates when they need the reference's name tie-break).
    """
    counters.cover_enumerations += 1
    if not bag:
        return ()
    useful = [i for i, m in enumerate(candidate_masks) if m & bag]
    union = 0
    for i in useful:
        union |= candidate_masks[i]
    if bag & ~union:
        return None

    uncovered = bag
    greedy: list[int] = []
    while uncovered:
        best = max(useful, key=lambda i: ((candidate_masks[i] & uncovered).bit_count(), i))
        gain = candidate_masks[best] & uncovered
        if not gain:  # pragma: no cover - cannot happen given the union check
            return None
        greedy.append(best)
        uncovered &= ~gain

    bound = len(greedy) if max_size is None else min(len(greedy), max_size)

    for size in range(1, bound):
        for combo in itertools.combinations(useful, size):
            covered = 0
            for i in combo:
                covered |= candidate_masks[i]
            if not bag & ~covered:
                return combo
    if max_size is not None and len(greedy) > max_size:
        for combo in itertools.combinations(useful, max_size):
            covered = 0
            for i in combo:
                covered |= candidate_masks[i]
            if not bag & ~covered:
                return combo
        return None
    return tuple(greedy)
