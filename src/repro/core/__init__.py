"""Core hypergraph machinery: the paper's Section 3 as code.

``Hypergraph`` is the central data structure; ``components`` implements
[U]-components and balanced separators (frozenset reference kernel);
``bitset`` the integer-mask compute kernel the searches actually run on;
``covers`` the (fractional) edge cover LP; ``subedges`` the ``f(H,k)`` sets
of the tractable GHD algorithm; ``properties`` the structural invariants of
Table 2; ``decomposition`` the decomposition objects with independent
validators.
"""

from repro.core.bitset import (
    FamilyIndex,
    HypergraphView,
    iter_bits,
    mask_components,
    mask_components_from,
    mask_covering_combinations,
    mask_is_balanced,
    mask_minimum_cover,
    mask_separate,
)
from repro.core.components import (
    components,
    connected_components,
    is_balanced_separator,
    separate,
    vertices_of,
)
from repro.core.covers import (
    FractionalCover,
    fractional_cover,
    fractional_cover_number,
    minimum_integral_cover,
)
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.properties import (
    HypergraphStatistics,
    compute_statistics,
    degree,
    intersection_size,
    multi_intersection_size,
    vc_dimension,
)
from repro.core.simplify import SimplificationTrace, lift_decomposition, simplify
from repro.core.subedges import augment_with_subedges, subedge_family
from repro.core.treewidth import (
    primal_graph,
    tree_decomposition_min_fill,
    treewidth_exact,
    treewidth_upper_bound,
)

__all__ = [
    "Hypergraph",
    "HypergraphView",
    "FamilyIndex",
    "iter_bits",
    "mask_components",
    "mask_components_from",
    "mask_covering_combinations",
    "mask_is_balanced",
    "mask_minimum_cover",
    "mask_separate",
    "Decomposition",
    "DecompositionNode",
    "components",
    "connected_components",
    "separate",
    "is_balanced_separator",
    "vertices_of",
    "FractionalCover",
    "fractional_cover",
    "fractional_cover_number",
    "minimum_integral_cover",
    "HypergraphStatistics",
    "compute_statistics",
    "degree",
    "intersection_size",
    "multi_intersection_size",
    "vc_dimension",
    "augment_with_subedges",
    "subedge_family",
    "SimplificationTrace",
    "simplify",
    "lift_decomposition",
    "primal_graph",
    "tree_decomposition_min_fill",
    "treewidth_exact",
    "treewidth_upper_bound",
]
