"""Treewidth of the primal graph, and TDs as decomposition objects.

The SPARQL analyses the paper builds on (Bonifati, Martens & Timm) classify
queries by the *treewidth* of their (primal) graph; this module adds the same
capability: the primal graph of a hypergraph, a min-fill-in tree
decomposition (via networkx's approximation algorithms), an exact treewidth
check for small instances, and the classical width relations

    hw(H) <= tw(H) + 1        (every TD bag can be covered edge-by-vertex)
    tw(H) + 1 <= hw(H) * arity(H)

which the test suite verifies on random hypergraphs.
"""

from __future__ import annotations

import itertools

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_fill_in

from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.utils.deadline import Deadline

__all__ = [
    "primal_graph",
    "tree_decomposition_min_fill",
    "treewidth_upper_bound",
    "treewidth_exact",
]


def primal_graph(hypergraph: Hypergraph) -> nx.Graph:
    """The primal (Gaifman) graph: vertices adjacent iff they share an edge."""
    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.vertices)
    for edge in hypergraph.edges.values():
        for u, v in itertools.combinations(sorted(edge), 2):
            graph.add_edge(u, v)
    return graph


def tree_decomposition_min_fill(hypergraph: Hypergraph) -> Decomposition:
    """A tree decomposition from the min-fill-in heuristic.

    The result is a valid TD of the *hypergraph* (every hyperedge is a
    clique of the primal graph and therefore contained in some bag).
    """
    graph = primal_graph(hypergraph)
    if graph.number_of_nodes() == 0:
        return Decomposition(hypergraph, DecompositionNode(frozenset(), {}), kind="TD")
    _width, junction_tree = treewidth_min_fill_in(graph)

    bags = list(junction_tree.nodes)
    if not bags:  # single vertex, no edges in the junction tree
        bags = [frozenset(graph.nodes)]

    # Root the junction tree and convert to DecompositionNodes.
    root_bag = bags[0]
    nodes: dict[frozenset, DecompositionNode] = {
        bag: DecompositionNode(frozenset(bag), {}) for bag in bags
    }
    visited = {root_bag}
    stack = [root_bag]
    while stack:
        bag = stack.pop()
        for neighbour in junction_tree.neighbors(bag):
            if neighbour in visited:
                continue
            visited.add(neighbour)
            nodes[bag].children.append(nodes[neighbour])
            stack.append(neighbour)
    return Decomposition(hypergraph, nodes[root_bag], kind="TD")


def treewidth_upper_bound(hypergraph: Hypergraph) -> int:
    """Width of the min-fill-in TD (an upper bound on tw)."""
    decomposition = tree_decomposition_min_fill(hypergraph)
    return max((len(bag) for bag in decomposition.bags()), default=1) - 1


def treewidth_exact(
    hypergraph: Hypergraph, deadline: Deadline | None = None
) -> int:
    """Exact treewidth by the elimination-ordering QuickBB-style search.

    Exponential — intended for the benchmark-scale instances (< 25 primal
    vertices), cooperative w.r.t. deadlines.
    """
    deadline = deadline or Deadline.unlimited()
    graph = primal_graph(hypergraph)
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    upper = treewidth_upper_bound(hypergraph)
    if upper <= 1:
        return upper

    best = upper
    memo: dict[frozenset, int] = {}

    adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes}

    def eliminate(remaining: frozenset, adj: dict[str, set[str]], bound: int) -> int:
        """Minimum over elimination orders of the maximum degree seen."""
        deadline.check()
        if len(remaining) <= 1:
            return 0
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        best_here = bound
        for v in sorted(remaining):
            degree = len(adj[v] & remaining)
            if degree >= best_here:
                continue
            neighbours = adj[v] & remaining
            # Eliminate v: connect its neighbours into a clique.
            new_adj = {u: set(adj[u]) for u in remaining if u != v}
            for a in neighbours:
                new_adj[a] |= neighbours - {a}
                new_adj[a].discard(v)
            sub = eliminate(remaining - {v}, new_adj, best_here)
            best_here = min(best_here, max(degree, sub))
        memo[remaining] = best_here
        return best_here

    best = eliminate(frozenset(graph.nodes), adjacency, best)
    return best
