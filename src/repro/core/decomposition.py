"""Decomposition objects and independent validators (Section 3.2).

A single :class:`Decomposition` class represents TDs, GHDs, HDs and FHDs: every
node carries a bag (set of vertices) and an edge-cover function mapping edge
names to weights.  Integral decompositions use weight ``1.0`` per λ-label
member; fractional ones use arbitrary non-negative weights.

The validators re-check every defining condition from scratch:

1. every hyperedge is contained in some bag,
2. connectedness: the nodes containing any vertex form a subtree,
3. cover: ``B_u ⊆ B(γ_u)`` at every node,
4. (HDs only) the *special condition*: ``V(T_u) ∩ B(λ_u) ⊆ B_u``.

They are deliberately written independently of the search algorithms so the
test suite can use them as a soundness oracle: anything any algorithm returns
must validate.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.core.hypergraph import Hypergraph
from repro.errors import ValidationError

__all__ = ["DecompositionNode", "Decomposition"]


class DecompositionNode:
    """One node of a decomposition tree.

    Attributes
    ----------
    bag:
        The vertex set ``B_u``.
    cover:
        The (fractional) edge cover ``γ_u`` as ``{edge_name: weight}``.
        Integral λ-labels use weight ``1.0``.
    children:
        Child nodes (the tree is rooted; HDs depend on the rooting).
    """

    __slots__ = ("bag", "cover", "children")

    def __init__(
        self,
        bag: frozenset[str] | set[str],
        cover: Mapping[str, float],
        children: list["DecompositionNode"] | None = None,
    ):
        self.bag = frozenset(bag)
        self.cover = dict(cover)
        self.children = list(children or [])

    @property
    def weight(self) -> float:
        """The cover weight at this node (its contribution to the width)."""
        return sum(self.cover.values())

    def lambda_label(self) -> frozenset[str]:
        """Edge names with positive weight (the λ/γ support)."""
        return frozenset(name for name, w in self.cover.items() if w > 0)

    def __repr__(self) -> str:
        return (
            f"DecompositionNode(bag={sorted(self.bag)}, "
            f"cover={sorted(self.lambda_label())}, children={len(self.children)})"
        )


class Decomposition:
    """A rooted decomposition of a hypergraph.

    Parameters
    ----------
    hypergraph:
        The decomposed hypergraph; cover labels refer to its edge names.
    root:
        Root node of the tree.
    kind:
        One of ``"TD"``, ``"GHD"``, ``"HD"``, ``"FHD"`` — informational, and
        selects which conditions :meth:`validate` enforces by default.
    """

    INTEGRAL_KINDS = ("TD", "GHD", "HD")
    KINDS = INTEGRAL_KINDS + ("FHD",)

    def __init__(self, hypergraph: Hypergraph, root: DecompositionNode, kind: str = "GHD"):
        if kind not in self.KINDS:
            raise ValueError(f"unknown decomposition kind {kind!r}")
        self.hypergraph = hypergraph
        self.root = root
        self.kind = kind

    # ------------------------------------------------------------- traversal

    def nodes(self) -> Iterator[DecompositionNode]:
        """Pre-order iterator over the tree nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __len__(self) -> int:
        return sum(1 for _ in self.nodes())

    @property
    def width(self) -> float:
        """``max_u weight(γ_u)`` — integral widths come out as whole floats."""
        return max(node.weight for node in self.nodes())

    @property
    def integral_width(self) -> int:
        """Width as an int; only meaningful for TD/GHD/HD decompositions."""
        return max(len(node.lambda_label()) for node in self.nodes())

    def bags(self) -> list[frozenset[str]]:
        return [node.bag for node in self.nodes()]

    # ------------------------------------------------------------ validation

    def validate(self, kind: str | None = None) -> None:
        """Re-check every defining condition; raise :class:`ValidationError`.

        ``kind`` overrides the decomposition's own kind (e.g. validate a GHD
        as a mere TD).  ``"HD"`` additionally enforces the special condition.
        """
        kind = kind or self.kind
        if kind not in self.KINDS:
            raise ValueError(f"unknown decomposition kind {kind!r}")
        self._validate_edge_coverage()
        self._validate_connectedness()
        if kind != "TD":
            self._validate_covers(integral=kind in ("GHD", "HD"))
        if kind == "HD":
            self._validate_special_condition()

    def _validate_edge_coverage(self) -> None:
        bags = self.bags()
        for name, edge in self.hypergraph.edges.items():
            if not any(edge <= bag for bag in bags):
                raise ValidationError(f"edge {name!r} is contained in no bag")

    def _validate_connectedness(self) -> None:
        # For every vertex, the nodes whose bag contains it must form a
        # connected subtree.  We check top-down: once a root-to-leaf path
        # leaves the vertex's subtree, the vertex must not reappear below.
        nodes = list(self.nodes())
        occurrences: dict[str, int] = {}
        for node in nodes:
            for v in node.bag:
                occurrences[v] = occurrences.get(v, 0) + 1

        def count_connected(node: DecompositionNode, v: str) -> int:
            """Size of the connected block containing ``node`` (which has v)."""
            total = 1
            for child in node.children:
                if v in child.bag:
                    total += count_connected(child, v)
            return total

        seen_roots: set[str] = set()
        stack: list[tuple[DecompositionNode, DecompositionNode | None]] = [
            (self.root, None)
        ]
        while stack:
            node, parent = stack.pop()
            for v in node.bag:
                is_block_root = parent is None or v not in parent.bag
                if not is_block_root:
                    continue
                if v in seen_roots:
                    raise ValidationError(
                        f"vertex {v!r} occurs in two disconnected parts of the tree"
                    )
                seen_roots.add(v)
                if count_connected(node, v) != occurrences[v]:
                    raise ValidationError(
                        f"vertex {v!r} violates the connectedness condition"
                    )
            for child in node.children:
                stack.append((child, node))

    def _validate_covers(self, integral: bool) -> None:
        edges = self.hypergraph.edges
        for node in self.nodes():
            totals: dict[str, float] = {}
            for name, weight in node.cover.items():
                if weight < 0:
                    raise ValidationError(f"negative cover weight on edge {name!r}")
                if integral and weight not in (0, 0.0, 1, 1.0):
                    raise ValidationError(
                        f"non-integral weight {weight} in an integral decomposition"
                    )
                if name not in edges:
                    raise ValidationError(f"cover refers to unknown edge {name!r}")
                for v in edges[name]:
                    totals[v] = totals.get(v, 0.0) + weight
            for v in node.bag:
                if totals.get(v, 0.0) < 1.0 - 1e-7:
                    raise ValidationError(
                        f"bag vertex {v!r} is not covered (condition 3 fails)"
                    )

    def _validate_special_condition(self) -> None:
        edges = self.hypergraph.edges

        def subtree_vertices(node: DecompositionNode) -> frozenset[str]:
            result = set(node.bag)
            for child in node.children:
                result |= subtree_vertices(child)
            return frozenset(result)

        for node in self.nodes():
            covered = frozenset().union(
                *(edges[name] for name in node.lambda_label())
            ) if node.cover else frozenset()
            offenders = (subtree_vertices(node) & covered) - node.bag
            if offenders:
                raise ValidationError(
                    f"special condition violated at a node: vertices "
                    f"{sorted(offenders)} appear below but are cut from the bag"
                )

    # ---------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """JSON-serialisable representation (see :mod:`repro.io`)."""

        def node_dict(node: DecompositionNode) -> dict:
            return {
                "bag": sorted(node.bag),
                "cover": {k: v for k, v in sorted(node.cover.items())},
                "children": [node_dict(c) for c in node.children],
            }

        return {
            "kind": self.kind,
            "hypergraph": self.hypergraph.name,
            "width": self.width,
            "root": node_dict(self.root),
        }

    def __repr__(self) -> str:
        return f"<{self.kind} of {self.hypergraph.name or 'H'}: width={self.width}, nodes={len(self)}>"
