"""[U]-components, separators and balanced separators (Section 3.3).

All functions here work on *edge families*: mappings ``{name: frozenset}``
rather than :class:`~repro.core.hypergraph.Hypergraph` objects, because the
``BalSep`` algorithm needs components of *extended subhypergraphs* whose
members mix real edges and special edges (Definition 6).  A hypergraph's edge
mapping plugs in directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.perf import counters

__all__ = [
    "connected_components",
    "components",
    "separate",
    "is_balanced_separator",
    "vertices_of",
]

EdgeFamily = Mapping[str, frozenset[str]]


def vertices_of(family: EdgeFamily, names: Iterable[str] | None = None) -> frozenset[str]:
    """Union of the vertex sets of ``names`` (all edges when omitted)."""
    if names is None:
        names = family.keys()
    result: set[str] = set()
    for name in names:
        result.update(family[name])
    return frozenset(result)


def components(family: EdgeFamily, separator: frozenset[str]) -> list[frozenset[str]]:
    """The [U]-components of an edge family w.r.t. vertex set ``separator``.

    Two edges are [U]-adjacent when ``(e1 & e2) - U`` is non-empty;
    [U]-components are the maximal [U]-connected edge subsets.  Edges fully
    contained in ``U`` belong to no component (they form the ``C0`` part of
    Definition 6 and are "absorbed" by the separator's bag).

    Returns a list of frozensets of edge *names*, in deterministic order
    (sorted by the smallest first-seen edge).

    This is the frozenset *reference* implementation (see
    :mod:`repro.core.bitset` for the mask-native kernel the searches use).
    """
    counters.components_calls += 1
    # Build vertex -> incident-edge index restricted to vertices outside U.
    incidence: dict[str, list[str]] = {}
    active: list[str] = []
    for name, edge in family.items():
        outside = edge - separator
        if not outside:
            continue  # absorbed by the separator bag
        active.append(name)
        for v in outside:
            incidence.setdefault(v, []).append(name)

    seen: set[str] = set()
    result: list[frozenset[str]] = []
    for start in active:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        comp: list[str] = []
        while stack:
            name = stack.pop()
            comp.append(name)
            for v in family[name] - separator:
                for neighbour in incidence[v]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
        result.append(frozenset(comp))
    return result


def connected_components(family: EdgeFamily) -> list[frozenset[str]]:
    """Connected components of an edge family (i.e. [∅]-components)."""
    return components(family, frozenset())


def separate(
    family: EdgeFamily, separator: frozenset[str]
) -> tuple[list[frozenset[str]], frozenset[str]]:
    """Like :func:`components` but also report the absorbed edges ``C0``.

    Returns ``(component_list, absorbed)`` where ``absorbed`` holds the names
    of edges fully contained in the separator.
    """
    comps = components(family, separator)
    in_component = set().union(*comps) if comps else set()
    absorbed = frozenset(name for name in family if name not in in_component)
    return comps, absorbed


def is_balanced_separator(
    family: EdgeFamily, separator: frozenset[str], total: int | None = None
) -> bool:
    """Whether ``separator`` is a *balanced separator* of the family.

    Per Definition 7, every [U]-component must contain at most half of the
    (possibly special) edges of the family.  ``total`` overrides the family
    size (it defaults to ``len(family)``).
    """
    if total is None:
        total = len(family)
    limit = total / 2
    return all(len(c) <= limit for c in components(family, separator))
