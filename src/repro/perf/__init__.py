"""Kernel instrumentation for the perf harness and the telemetry layer.

The bitset kernel (:mod:`repro.core.bitset`) and the frozenset reference
implementations both report how often the hot primitives run — the
[U]-component computation, the cover/separator enumeration, the subedge
closure, and the balancedness check — through the module-level
:data:`counters` singleton.  The microbench harness
(:mod:`repro.perf.harness`) resets the counters around each timed case and
stores the deltas next to the wall time in ``BENCH_kernel.json``, so a perf
regression can be attributed to "more work" vs "slower work".

The counters are plain attribute increments: cheap enough to leave enabled
unconditionally.  Worker processes do not share the parent's singleton —
:mod:`repro.engine.workers` snapshots the child's counters around each job
(:meth:`KernelCounters.delta_since`), ships the delta back over the result
pipe, and the parent :meth:`merges <KernelCounters.merge>` it in and
publishes it to the metrics registry (:func:`publish_delta`), so worker-side
kernel work is no longer invisible.
"""

from __future__ import annotations

__all__ = ["KernelCounters", "counters", "publish_delta"]

_FIELDS = (
    "components_calls",
    "cover_enumerations",
    "subedge_closures",
    "balance_checks",
)


class KernelCounters:
    """Call counters for the decomposition hot-path primitives."""

    __slots__ = _FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.components_calls = 0
        self.cover_enumerations = 0
        self.subedge_closures = 0
        self.balance_checks = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _FIELDS}

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        """What accrued since ``before`` (an earlier :meth:`snapshot`).

        Only non-zero fields appear, so an idle job ships an empty dict.
        """
        delta: dict[str, int] = {}
        for name in _FIELDS:
            grew = getattr(self, name) - before.get(name, 0)
            if grew:
                delta[name] = grew
        return delta

    def merge(self, delta: dict[str, int] | None) -> None:
        """Fold a shipped worker delta into this (parent-side) instance."""
        if not delta:
            return
        for name in _FIELDS:
            amount = delta.get(name, 0)
            if amount:
                setattr(self, name, getattr(self, name) + amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelCounters({self.snapshot()})"


#: Process-global counter singleton, shared by both kernels.
counters = KernelCounters()


def publish_delta(delta: dict[str, int] | None) -> None:
    """Publish a counter delta as ``repro_kernel_*_total`` metrics.

    Called at execution boundaries (worker result receipt, in-process check
    completion) with a bulk delta — never per-increment in kernel loops, so
    the hot path stays lock-free.
    """
    if not delta:
        return
    from repro.obs.metrics import REGISTRY

    for name, amount in delta.items():
        if name in _FIELDS and amount:
            REGISTRY.counter(
                f"repro_kernel_{name}_total",
                f"Kernel {name.replace('_', ' ')} across all processes.",
            ).inc(amount)
