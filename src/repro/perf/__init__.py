"""Kernel instrumentation for the perf harness.

The bitset kernel (:mod:`repro.core.bitset`) and the frozenset reference
implementations both report how often the two hot primitives run — the
[U]-component computation and the cover/separator enumeration — through the
module-level :data:`counters` singleton.  The microbench harness
(:mod:`repro.perf.harness`) resets the counters around each timed case and
stores the deltas next to the wall time in ``BENCH_kernel.json``, so a perf
regression can be attributed to "more work" vs "slower work".

The counters are plain attribute increments: cheap enough to leave enabled
unconditionally, and per-process (worker processes report nothing back —
the harness runs its cases in-process precisely so the counts are exact).
"""

from __future__ import annotations

__all__ = ["KernelCounters", "counters"]


class KernelCounters:
    """Call counters for the decomposition hot-path primitives."""

    __slots__ = ("components_calls", "cover_enumerations", "subedge_closures")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.components_calls = 0
        self.cover_enumerations = 0
        self.subedge_closures = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "components_calls": self.components_calls,
            "cover_enumerations": self.cover_enumerations,
            "subedge_closures": self.subedge_closures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelCounters({self.snapshot()})"


#: Process-global counter singleton, shared by both kernels.
counters = KernelCounters()
