"""Cold-check microbench harness: bitset kernel vs frozenset reference.

The workload is a fixed set of repository-style instances (structured CSP
patterns plus seeded random CSP/CQ hypergraphs) checked across the hw / ghw
methods.  Every case runs **cold**: the instance is rebuilt for each timed
repetition, so nothing — not even the cached
:class:`~repro.core.bitset.HypergraphView` — survives between runs, and the
measured time is exactly one ``Check(H, k)`` from scratch.

For ``detkdecomp`` and ``balsep`` the same case also runs on the frozen
reference kernel (:mod:`repro.decomp.reference`) and the report records the
speedup; ``localbip`` / ``globalbip`` / ``hybrid`` are timed on the bitset
kernel only, with their verdicts cross-checked against the reference
``balsep`` answer for the same ``(H, k)``.

Output is ``BENCH_kernel.json``::

    {"meta": {...},
     "cases": [{"case": "K7/detkdecomp/k3", ..., "bitset": {"verdict",
                "seconds", "components_calls", "cover_enumerations",
                "subedge_closures"}, "reference": {...}|null,
                "speedup": 2.9, "verdicts_agree": true}, ...],
     "summary": {"speedup_geomean", "detkdecomp_speedup_geomean", ...}}

``compare_to_baseline`` implements the CI perf gate: a case regresses when
its deterministic kernel call counts grow beyond 2x the baseline, or when
its cold bitset time exceeds ``max(2 × baseline, baseline + 50 ms)`` after
normalising the baseline by the machine-speed ratio estimated from the
frozen reference kernel's timings — so a slow CI runner does not flag
phantom regressions and a fast one does not mask real ones.
"""

from __future__ import annotations

import json
import math
import platform
import random
import sys
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.hypergraph import Hypergraph
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.hybrid import check_ghd_hybrid
from repro.decomp.localbip import check_ghd_local_bip
from repro.decomp.reference import check_ghd_balsep_reference, check_hd_reference
from repro.errors import DeadlineExceeded, SubedgeLimitError
from repro.perf import counters
from repro.utils.deadline import Deadline

__all__ = [
    "BenchCase",
    "default_workload",
    "run_workload",
    "run_dispatch_workload",
    "run_obs_workload",
    "compare_to_baseline",
    "main",
]

#: Per-attempt wall-clock cap; workload cases are sized well below this.
CASE_TIMEOUT = 120.0

#: CI regression gate: new > max(factor * old, old + slack) fails.
REGRESSION_FACTOR = 2.0
REGRESSION_SLACK = 0.05

BITSET_METHODS: dict[str, Callable] = {
    "detkdecomp": check_hd,
    "balsep": check_ghd_balsep,
    "localbip": check_ghd_local_bip,
    "globalbip": check_ghd_global_bip,
    "hybrid": check_ghd_hybrid,
}

REFERENCE_METHODS: dict[str, Callable] = {
    "detkdecomp": check_hd_reference,
    "balsep": check_ghd_balsep_reference,
}

#: Reference oracle per method for verdict cross-checks (a GHD method must
#: agree with the reference GHD answer; detkdecomp with the reference HD).
ORACLE_METHOD = {
    "detkdecomp": "detkdecomp",
    "balsep": "balsep",
    "localbip": "balsep",
    "globalbip": "balsep",
    "hybrid": "balsep",
}


# ------------------------------------------------------------- instances


def _clique(n: int) -> Hypergraph:
    edges = {}
    for i in range(n):
        for j in range(i + 1, n):
            edges[f"e{i}_{j}"] = [f"v{i}", f"v{j}"]
    return Hypergraph(edges, name=f"K{n}")


def _cycle(n: int) -> Hypergraph:
    return Hypergraph(
        {f"c{i}": [f"x{i}", f"x{(i + 1) % n}"] for i in range(n)},
        name=f"cycle{n}",
    )


def _grid(rows: int, cols: int) -> Hypergraph:
    """Binary grid adjacency: hw grows with min(rows, cols)."""
    edges = {}
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges[f"h{r}_{c}"] = [f"m{r}_{c}", f"m{r}_{c + 1}"]
            if r + 1 < rows:
                edges[f"v{r}_{c}"] = [f"m{r}_{c}", f"m{r + 1}_{c}"]
    return Hypergraph(edges, name=f"grid{rows}x{cols}")


def _random_csp(seed: int, variables: int, constraints: int, arity: int) -> Hypergraph:
    rng = random.Random(seed)
    pool = [f"x{i}" for i in range(variables)]
    edges = {}
    for j in range(constraints):
        edges[f"c{j}"] = rng.sample(pool, rng.randint(2, arity))
    return Hypergraph(edges, name=f"csp_s{seed}").dedupe()


@dataclass(frozen=True)
class BenchCase:
    """One (instance, method, k) cold-check case of the fixed workload."""

    instance: str
    method: str
    k: int
    build: Callable[[], Hypergraph]
    quick: bool = True  # quick cases also run in the CI perf-smoke job

    @property
    def case_id(self) -> str:
        return f"{self.instance}/{self.method}/k{self.k}"


def default_workload(quick: bool = False) -> list[BenchCase]:
    """The fixed cold-check workload (a deterministic case list)."""
    cases = [
        # --- hw via DetKDecomp: accept and refute, structured and random.
        BenchCase("K6", "detkdecomp", 2, lambda: _clique(6)),
        BenchCase("K7", "detkdecomp", 3, lambda: _clique(7)),
        BenchCase("grid4x4", "detkdecomp", 2, lambda: _grid(4, 4)),
        BenchCase("grid5x4", "detkdecomp", 3, lambda: _grid(5, 4)),
        BenchCase("cycle24", "detkdecomp", 2, lambda: _cycle(24)),
        BenchCase("csp_s3", "detkdecomp", 2, lambda: _random_csp(3, 14, 22, 3)),
        BenchCase("csp_s5", "detkdecomp", 2, lambda: _random_csp(5, 15, 24, 3)),
        BenchCase("K8", "detkdecomp", 3, lambda: _clique(8), quick=False),
        BenchCase("csp_s9", "detkdecomp", 3, lambda: _random_csp(9, 16, 26, 4), quick=False),
        # --- ghw via BalSep (reference-timed) ...
        BenchCase("K6", "balsep", 2, lambda: _clique(6)),
        BenchCase("cycle16", "balsep", 1, lambda: _cycle(16)),
        BenchCase("csp_s3", "balsep", 2, lambda: _random_csp(3, 14, 22, 3)),
        BenchCase("K7", "balsep", 2, lambda: _clique(7), quick=False),
        BenchCase("csp_s9", "balsep", 2, lambda: _random_csp(9, 16, 26, 4), quick=False),
        # --- ... and the remaining GHD methods (bitset-only timing, verdict
        #     cross-checked against the reference balsep oracle).
        BenchCase("cycle16", "localbip", 1, lambda: _cycle(16)),
        BenchCase("csp_s3", "localbip", 2, lambda: _random_csp(3, 14, 22, 3)),
        BenchCase("cycle16", "globalbip", 1, lambda: _cycle(16)),
        BenchCase("grid4x4", "globalbip", 2, lambda: _grid(4, 4)),
        BenchCase("K6", "hybrid", 2, lambda: _clique(6)),
        BenchCase("csp_s3", "hybrid", 2, lambda: _random_csp(3, 14, 22, 3)),
    ]
    if quick:
        cases = [c for c in cases if c.quick]
    return cases


# ------------------------------------------------------------------ runs


def _timed_run(check: Callable, build: Callable[[], Hypergraph], k: int,
               repeat: int) -> dict:
    """Best-of-``repeat`` cold run; the instance is rebuilt per repetition."""
    best: dict | None = None
    for _ in range(repeat):
        hypergraph = build()  # fresh instance: no cached views, cold caches
        counters.reset()
        start = time.perf_counter()
        try:
            decomposition = check(hypergraph, k, Deadline(CASE_TIMEOUT))
            verdict = "yes" if decomposition is not None else "no"
        except (DeadlineExceeded, SubedgeLimitError):
            verdict = "timeout"
        seconds = time.perf_counter() - start
        result = {"verdict": verdict, "seconds": seconds, **counters.snapshot()}
        if best is None or seconds < best["seconds"]:
            best = result
    assert best is not None
    return best


def run_workload(
    cases: list[BenchCase] | None = None,
    quick: bool = False,
    repeat: int = 1,
) -> dict:
    """Run the workload on both kernels and return the report dict."""
    if cases is None:
        cases = default_workload(quick=quick)
    oracle_cache: dict[tuple[str, str, int], str] = {}
    records = []
    for case in cases:
        hypergraph = case.build()
        bitset = _timed_run(BITSET_METHODS[case.method], case.build, case.k, repeat)

        reference = None
        ref_fn = REFERENCE_METHODS.get(case.method)
        oracle_method = ORACLE_METHOD[case.method]
        oracle_key = (case.instance, oracle_method, case.k)
        if ref_fn is not None:
            reference = _timed_run(ref_fn, case.build, case.k, repeat)
            oracle_cache[oracle_key] = reference["verdict"]
            oracle_verdict = reference["verdict"]
        else:
            oracle_verdict = oracle_cache.get(oracle_key)
            if oracle_verdict is None:
                oracle_run = _timed_run(
                    REFERENCE_METHODS[oracle_method], case.build, case.k, 1
                )
                oracle_verdict = oracle_run["verdict"]
                oracle_cache[oracle_key] = oracle_verdict

        agree = bitset["verdict"] == oracle_verdict
        speedup = None
        if reference is not None and "timeout" not in (
            bitset["verdict"], reference["verdict"]
        ):
            speedup = reference["seconds"] / max(bitset["seconds"], 1e-9)
        records.append(
            {
                "case": case.case_id,
                "instance": case.instance,
                "method": case.method,
                "k": case.k,
                "vertices": hypergraph.num_vertices,
                "edges": hypergraph.num_edges,
                "bitset": bitset,
                "reference": reference,
                "oracle_verdict": oracle_verdict,
                "verdicts_agree": agree,
                "speedup": speedup,
            }
        )

    speedups = [r["speedup"] for r in records if r["speedup"]]
    det_speedups = [
        r["speedup"] for r in records if r["speedup"] and r["method"] == "detkdecomp"
    ]

    def geomean(values: list[float]) -> float | None:
        if not values:
            return None
        return math.exp(sum(math.log(v) for v in values) / len(values))

    report = {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "quick": quick,
            "repeat": repeat,
        },
        "cases": records,
        "summary": {
            "cases": len(records),
            "with_reference": sum(1 for r in records if r["reference"]),
            "verdict_mismatches": sum(1 for r in records if not r["verdicts_agree"]),
            "speedup_geomean": geomean(speedups),
            "detkdecomp_speedup_geomean": geomean(det_speedups),
            "min_speedup": min(speedups) if speedups else None,
            "total_bitset_seconds": sum(r["bitset"]["seconds"] for r in records),
            "total_reference_seconds": sum(
                r["reference"]["seconds"] for r in records if r["reference"]
            ),
        },
    }
    return report


# ------------------------------------------------------------- dispatch


#: Dispatch workload shape: ≥ 50 small instances through ≥ 2 workers.
DISPATCH_INSTANCES = 56
DISPATCH_JOBS = 2
DISPATCH_K = 2
DISPATCH_TIMEOUT = 30.0
DISPATCH_EDGES = 160
DISPATCH_ARITY = 5


def _dispatch_chain(seed: int) -> Hypergraph:
    """A long acyclic chain of arity-5 edges (an SQL-style chain query).

    ``Check(HD, 2)`` decides it almost instantly, so the measured time is
    dominated by exactly what the dispatch bench is about: moving the
    instance to a worker and the ~160-node decomposition back.  Searching
    harder instances would dilute the wire-path difference into search
    time that is identical on both paths.
    """
    return Hypergraph(
        {
            f"relation{seed}_{j:03d}": [
                f"attribute{seed}_{j + i:04d}" for i in range(DISPATCH_ARITY)
            ]
            for j in range(DISPATCH_EDGES)
        },
        name=f"chain{seed}",
    )


def _dispatch_instances(count: int) -> list[Hypergraph]:
    return [_dispatch_chain(seed) for seed in range(count)]


def run_dispatch_workload(
    count: int = DISPATCH_INSTANCES,
    jobs: int = DISPATCH_JOBS,
    repeat: int = 1,
) -> dict:
    """Engine-dispatch overhead: packed wire views vs the legacy pickle path.

    One ``run_batch`` of ``count`` single ``Check(H, k)`` jobs (no store, so
    every job dispatches to a worker process) is timed twice — once with the
    packed :class:`~repro.core.bitset.PackedHypergraph` wire format, once
    with ``packed=False`` (the pre-refactor path that pickles named
    hypergraphs out and full decompositions back).  Verdicts from both runs
    are cross-checked against the frozen reference kernel
    (:mod:`repro.decomp.reference`), in-process — any disagreement is a
    correctness bug, not noise.
    """
    from repro.decomp.reference import check_hd_reference
    from repro.engine import DecompositionEngine, JobSpec

    instances = _dispatch_instances(count)
    oracle = {}
    for h in instances:
        try:
            decomposition = check_hd_reference(h, DISPATCH_K, Deadline(CASE_TIMEOUT))
            oracle[h.name] = "yes" if decomposition is not None else "no"
        except (DeadlineExceeded, SubedgeLimitError):  # pragma: no cover
            oracle[h.name] = "timeout"

    def timed_batch(packed: bool) -> tuple[float, dict[str, str]]:
        best_seconds = None
        verdicts: dict[str, str] = {}
        for _ in range(repeat):
            # Fresh instances per repetition: nothing (views, fingerprints)
            # survives from the previous run or the oracle pass.
            fresh = _dispatch_instances(count)
            engine = DecompositionEngine(jobs=jobs, packed=packed)
            specs = [
                JobSpec.check(h, DISPATCH_K, method="hd", timeout=DISPATCH_TIMEOUT)
                for h in fresh
            ]
            start = time.perf_counter()
            report = engine.run_batch(specs)
            seconds = time.perf_counter() - start
            if best_seconds is None or seconds < best_seconds:
                best_seconds = seconds
                verdicts = {r.spec.name: r.verdict for r in report.results}
        assert best_seconds is not None
        return best_seconds, verdicts

    packed_seconds, packed_verdicts = timed_batch(True)
    named_seconds, named_verdicts = timed_batch(False)
    mismatches = sum(
        1
        for name, verdict in oracle.items()
        if packed_verdicts.get(name) != verdict or named_verdicts.get(name) != verdict
    )
    return {
        "instances": count,
        "jobs": jobs,
        "k": DISPATCH_K,
        "method": "hd",
        "repeat": repeat,
        "packed_seconds": packed_seconds,
        "named_seconds": named_seconds,
        "speedup": named_seconds / max(packed_seconds, 1e-9),
        "verdict_mismatches": mismatches,
    }


# ------------------------------------------------------------------- obs


#: Telemetry overhead gate: enabled/disabled cold-check time ratio cap.
OBS_OVERHEAD_LIMIT = 1.05

#: Harness method names -> engine registry names where they differ.
OBS_ENGINE_METHOD = {"detkdecomp": "hd"}


def _obs_cases() -> list[BenchCase]:
    """Cold checks big enough that per-check span/metric cost is marginal."""
    return [
        BenchCase("K6", "detkdecomp", 2, lambda: _clique(6)),
        BenchCase("K7", "detkdecomp", 3, lambda: _clique(7)),
        BenchCase("grid4x4", "detkdecomp", 2, lambda: _grid(4, 4)),
        BenchCase("csp_s3", "balsep", 2, lambda: _random_csp(3, 14, 22, 3)),
    ]


def run_obs_workload(rounds: int = 3) -> dict:
    """Instrumentation overhead: engine-routed cold checks, telemetry on/off.

    The same fixed case list runs through a fresh in-process
    :class:`~repro.engine.engine.DecompositionEngine` (so every check pays
    the full instrumented path: ``engine.check`` span, ``worker.exec`` span,
    counter delta publication, ``EngineStats`` metric increments) — once
    with the global :data:`~repro.obs.trace.TRACER` and
    :data:`~repro.obs.metrics.REGISTRY` disabled, once enabled, best-of-
    ``rounds`` each.  Instances are rebuilt and the engine recreated per
    round, so both passes are equally cold.  The report's
    ``overhead_ratio`` (enabled / disabled) is gated at
    :data:`OBS_OVERHEAD_LIMIT` by :func:`main`.
    """
    from repro.engine import DecompositionEngine
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import TRACER

    cases = _obs_cases()

    def timed_pass(warmup: bool = False) -> float:
        best = None
        for _ in range(1 if warmup else rounds):
            engine = DecompositionEngine(jobs=1)
            start = time.perf_counter()
            for case in cases:
                method = OBS_ENGINE_METHOD.get(case.method, case.method)
                engine.check(case.build(), case.k, method=method,
                             timeout=CASE_TIMEOUT)
            seconds = time.perf_counter() - start
            engine.close()
            if best is None or seconds < best:
                best = seconds
        return best

    tracer_was, registry_was = TRACER.enabled, REGISTRY.enabled
    try:
        TRACER.enabled = REGISTRY.enabled = False
        timed_pass(warmup=True)  # warm allocator/bytecode before either pass
        disabled = timed_pass()
        TRACER.enabled = REGISTRY.enabled = True
        enabled = timed_pass()
    finally:
        TRACER.enabled, REGISTRY.enabled = tracer_was, registry_was

    ratio = enabled / max(disabled, 1e-9)
    return {
        "cases": [case.case_id for case in cases],
        "rounds": rounds,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": ratio,
        "limit": OBS_OVERHEAD_LIMIT,
        "within_limit": ratio <= OBS_OVERHEAD_LIMIT,
    }


# ------------------------------------------------------------ regression


def compare_to_baseline(report: dict, baseline: dict) -> list[str]:
    """CI perf gate: cases whose cold bitset cost regressed vs the baseline.

    Two checks per case present in both reports, both designed to hold on a
    runner with a different speed than the machine that recorded the
    baseline:

    * **Kernel call counts** (``components_calls`` / ``cover_enumerations``)
      are deterministic for a fixed workload, so they compare exactly across
      machines; a count above ``REGRESSION_FACTOR`` × baseline (+ a small
      absolute slack for trivial cases) means the search does more work.
    * **Wall time**, after normalising the baseline by the machines' speed
      ratio — estimated from the *reference kernel's* total seconds in the
      two reports.  The reference kernel is frozen code, so its runtime
      measures the machine, not the change under test.  Without reference
      timings on either side the ratio falls back to 1.

    Cases absent from the baseline are ignored (new coverage, not a
    regression).
    """
    old_cases = {r["case"]: r for r in baseline.get("cases", [])}
    new_ref = report.get("summary", {}).get("total_reference_seconds") or 0.0
    old_ref = baseline.get("summary", {}).get("total_reference_seconds") or 0.0
    machine_ratio = new_ref / old_ref if new_ref and old_ref else 1.0
    regressions = []
    for record in report["cases"]:
        old = old_cases.get(record["case"])
        if old is None:
            continue
        for counter in ("components_calls", "cover_enumerations"):
            old_count = old["bitset"].get(counter)
            new_count = record["bitset"].get(counter)
            if (
                old_count is not None
                and new_count is not None
                and new_count > REGRESSION_FACTOR * old_count + 64
            ):
                regressions.append(
                    f"{record['case']}: {counter} {new_count} vs baseline "
                    f"{old_count} (> {REGRESSION_FACTOR:g}x)"
                )
        old_seconds = old["bitset"]["seconds"] * machine_ratio
        new_seconds = record["bitset"]["seconds"]
        if new_seconds > max(
            REGRESSION_FACTOR * old_seconds, old_seconds + REGRESSION_SLACK
        ):
            regressions.append(
                f"{record['case']}: {new_seconds:.3f}s vs baseline "
                f"{old_seconds:.3f}s (machine-normalised, "
                f"> max({REGRESSION_FACTOR:g}x, +{REGRESSION_SLACK:.02}s))"
            )
    return regressions


# ------------------------------------------------------------------- CLI


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Cold Check(H,k) microbench: bitset kernel vs reference"
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI subset of the workload")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per case (best-of)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="report path (default: ./BENCH_kernel.json)")
    parser.add_argument("--baseline", default=None,
                        help="baseline BENCH_kernel.json for the regression gate")
    parser.add_argument("--no-dispatch", action="store_true",
                        help="skip the packed-vs-pickle dispatch benchmark")
    parser.add_argument("--no-obs", action="store_true",
                        help="skip the telemetry-overhead benchmark")
    args = parser.parse_args(argv)

    report = run_workload(quick=args.quick, repeat=args.repeat)
    if not args.no_dispatch:
        report["dispatch"] = run_dispatch_workload(repeat=args.repeat)
    if not args.no_obs:
        report["obs"] = run_obs_workload()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    summary = report["summary"]
    for record in report["cases"]:
        speed = f"{record['speedup']:.1f}x" if record["speedup"] else "  -  "
        flag = "" if record["verdicts_agree"] else "  VERDICT MISMATCH"
        print(
            f"{record['case']:<28} {record['bitset']['verdict']:<7}"
            f" {record['bitset']['seconds']*1000:9.1f} ms  {speed:>7}{flag}"
        )
    print(
        f"\n{summary['cases']} cases, geomean speedup "
        f"{summary['speedup_geomean'] and round(summary['speedup_geomean'], 2)}"
        f" (detkdecomp {summary['detkdecomp_speedup_geomean'] and round(summary['detkdecomp_speedup_geomean'], 2)});"
        f" report -> {args.out}"
    )

    dispatch = report.get("dispatch")
    if dispatch is not None:
        print(
            f"\ndispatch ({dispatch['instances']} instances, "
            f"{dispatch['jobs']} workers): packed "
            f"{dispatch['packed_seconds']*1000:.0f} ms vs pickle "
            f"{dispatch['named_seconds']*1000:.0f} ms "
            f"({dispatch['speedup']:.2f}x)"
        )

    obs = report.get("obs")
    if obs is not None:
        print(
            f"\nobs overhead ({len(obs['cases'])} cold checks, best of "
            f"{obs['rounds']}): telemetry on {obs['enabled_seconds']*1000:.1f} ms"
            f" vs off {obs['disabled_seconds']*1000:.1f} ms "
            f"({(obs['overhead_ratio'] - 1) * 100:+.1f}%, limit "
            f"+{(obs['limit'] - 1) * 100:.0f}%)"
        )

    status = 0
    if summary["verdict_mismatches"]:
        print(f"FAIL: {summary['verdict_mismatches']} verdict mismatch(es)")
        status = 1
    if dispatch is not None and dispatch["verdict_mismatches"]:
        print(
            f"FAIL: {dispatch['verdict_mismatches']} packed-dispatch verdict "
            "mismatch(es) vs the reference kernel"
        )
        status = 1
    if obs is not None and not obs["within_limit"]:
        print(
            f"FAIL: telemetry overhead {obs['overhead_ratio']:.3f}x exceeds "
            f"the {obs['limit']:g}x gate"
        )
        status = 1
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare_to_baseline(report, baseline)
        for line in regressions:
            print(f"REGRESSION {line}")
        if regressions:
            status = 1
        else:
            print("baseline gate: ok")
    return status
