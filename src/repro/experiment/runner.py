"""The resumable experiment runner: corpus → batched engine waves.

An experiment lives in one directory::

    expdir/
      manifest.json   what to run (corpus sections + protocol knobs)
      meta.jsonl      instance fingerprints, statistics, phase markers
      jobs.jsonl      the engine's batch journal (one line per finished job)
      store.db        the content-addressed ResultStore (file or shard dir)

Both journals are append-only and flushed per record, so a SIGKILL at any
point loses at most the line being written.  ``meta.jsonl`` is read with a
tolerant loader that skips torn lines; ``jobs.jsonl`` is the engine's own
:class:`~repro.engine.jobs.Journal`, which compacts damage away on load.
Resume is therefore not a special mode: :meth:`ExperimentRunner.run` always
replays the phases in order — corpus (fingerprint-verified against the
journal, so manifest or generator drift fails loudly instead of mixing two
corpora), statistics, the Figure 4 hw sweep, the Tables 3/4 portfolio
waves, the Tables 5/6 fractional waves — and every wave goes through
``run_batch``, which skips journalled jobs, answers what the store already
knows, and executes only the remainder.

The runner deliberately records *no* analysis results of its own: tables
are derived later by :class:`repro.experiment.results.ExperimentResults`,
which replays the original analysis protocols against the store.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.fractional_analysis import FRAC_METHOD
from repro.benchmark.repository import HyperBenchRepository
from repro.core.properties import HypergraphStatistics, compute_statistics
from repro.engine.fingerprint import fingerprint
from repro.engine.jobs import JobSpec, Journal
from repro.errors import ReproError
from repro.experiment.corpus import Manifest, build_corpus

__all__ = [
    "PHASES",
    "ExperimentError",
    "ExperimentPaths",
    "ExperimentRunner",
    "ExperimentStatus",
    "MetaJournal",
    "RunSummary",
    "experiment_status",
]

#: Phase order; a phase marker in meta.jsonl means the phase fully finished.
PHASES = ("corpus", "stats", "hw", "ghw", "frac")


class ExperimentError(ReproError):
    """An experiment directory is inconsistent, incomplete, or drifted."""


@dataclass(frozen=True)
class ExperimentPaths:
    """The fixed layout of an experiment directory."""

    root: Path

    @classmethod
    def at(cls, root: "str | Path | ExperimentPaths") -> "ExperimentPaths":
        if isinstance(root, ExperimentPaths):
            return root
        return cls(Path(root))

    @property
    def manifest(self) -> Path:
        return self.root / "manifest.json"

    @property
    def meta(self) -> Path:
        return self.root / "meta.jsonl"

    @property
    def jobs(self) -> Path:
        return self.root / "jobs.jsonl"

    @property
    def store(self) -> Path:
        return self.root / "store.db"


class MetaJournal:
    """Append-only experiment metadata (instances, statistics, phases).

    Unlike the engine's job journal this one is never compacted or
    rewritten: a half-written tail line (the SIGKILL case) is skipped on
    load and simply re-appended by the next run.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def load(self) -> list[dict]:
        if not self.path.exists():
            return []
        records: list[dict] = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
            if isinstance(record, dict) and "type" in record:
                records.append(record)
        return records

    def append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            # A crash can leave a torn tail with no newline; terminate it so
            # the new record starts on its own line (the torn fragment stays
            # in place and is skipped by load(), like any damaged line).
            if handle.tell() > 0:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, 2)
                    torn = peek.read(1) != b"\n"
                if torn:
                    handle.write(b"\n")
            handle.write(json.dumps(record, sort_keys=True).encode() + b"\n")
            handle.flush()


@dataclass
class RunSummary:
    """What one :meth:`ExperimentRunner.run` call did (including replays)."""

    instances: int = 0
    waves: int = 0
    total_jobs: int = 0
    resumed: int = 0
    cache_hits: int = 0
    executed: int = 0

    def book(self, report) -> None:
        self.waves += 1
        self.total_jobs += report.total
        self.resumed += report.resumed
        self.cache_hits += report.cache_hits
        self.executed += report.executed


class ExperimentRunner:
    """Drive one experiment directory to completion (idempotently).

    ``engine`` is a :class:`repro.engine.DecompositionEngine` whose store
    must be the experiment's ``store.db``; an optional ``dispatcher``
    (:class:`repro.engine.remote.Dispatcher`) replaces its ``run_batch``
    for multi-host execution — both share the journal contract, so a run
    can even switch between them between interruptions.
    """

    def __init__(
        self,
        paths: "str | Path | ExperimentPaths",
        engine,
        dispatcher=None,
        manifest: Manifest | None = None,
    ):
        self.paths = ExperimentPaths.at(paths)
        self.engine = engine
        self.dispatcher = dispatcher
        if manifest is None:
            if not self.paths.manifest.exists():
                raise ExperimentError(
                    f"no manifest at {self.paths.manifest}; pass one or run "
                    "`repro experiment run` first"
                )
            manifest = Manifest.from_file(self.paths.manifest)
        self.manifest = manifest

    # ------------------------------------------------------------- plumbing

    def _run_batch(self, specs: list[JobSpec], journal: Journal, summary: RunSummary):
        if not specs:
            return
        runner = self.dispatcher if self.dispatcher is not None else self.engine
        summary.book(runner.run_batch(specs, journal=journal))

    # ----------------------------------------------------------------- run

    def run(self) -> RunSummary:
        """Run (or resume) the experiment; safe to call any number of times."""
        self.paths.root.mkdir(parents=True, exist_ok=True)
        if not self.paths.manifest.exists():
            self.manifest.save(self.paths.manifest)
        meta = MetaJournal(self.paths.meta)
        records = meta.load()
        done_phases = {r["phase"] for r in records if r.get("type") == "phase"}
        summary = RunSummary()

        repository = self._corpus_phase(meta, records, done_phases)
        summary.instances = len(repository)
        self._stats_phase(meta, records, done_phases, repository)

        journal = Journal(self.paths.jobs)
        hw_high = self._hw_phase(repository, journal, summary)
        self._mark(meta, done_phases, "hw")
        self._ghw_phase(repository, hw_high, journal, summary)
        self._mark(meta, done_phases, "ghw")
        self._frac_phase(repository, hw_high, journal, summary)
        self._mark(meta, done_phases, "frac")
        return summary

    def _mark(self, meta: MetaJournal, done_phases: set, phase: str) -> None:
        if phase not in done_phases:
            meta.append({"type": "phase", "phase": phase})
            done_phases.add(phase)

    # -------------------------------------------------------------- phases

    def _corpus_phase(
        self, meta: MetaJournal, records: list[dict], done_phases: set
    ) -> HyperBenchRepository:
        repository = build_corpus(self.manifest)
        known = {r["name"]: r for r in records if r.get("type") == "instance"}
        for entry in repository:
            fp = fingerprint(entry.hypergraph)
            prior = known.get(entry.name)
            if prior is None:
                meta.append(
                    {
                        "type": "instance",
                        "name": entry.name,
                        "class": str(entry.benchmark_class),
                        "family": entry.extra.get("family"),
                        "fingerprint": fp,
                    }
                )
            elif prior.get("fingerprint") != fp:
                raise ExperimentError(
                    f"instance {entry.name!r} drifted: journalled fingerprint "
                    f"{prior.get('fingerprint')!r} != rebuilt {fp!r} — the "
                    "manifest or a generator changed since the experiment "
                    "started; use a fresh directory"
                )
        self._mark(meta, done_phases, "corpus")
        return repository

    def _stats_phase(
        self,
        meta: MetaJournal,
        records: list[dict],
        done_phases: set,
        repository: HyperBenchRepository,
    ) -> None:
        known = {r["name"]: r for r in records if r.get("type") == "stats"}
        for entry in repository:
            prior = known.get(entry.name)
            if prior is not None:
                payload = prior.get("stats")
                if payload is not None:
                    entry.statistics = HypergraphStatistics(**payload)
                continue
            entry.statistics = compute_statistics(entry.hypergraph)
            meta.append(
                {
                    "type": "stats",
                    "name": entry.name,
                    "stats": asdict(entry.statistics),
                }
            )
        self._mark(meta, done_phases, "stats")

    def _hw_phase(
        self,
        repository: HyperBenchRepository,
        journal: Journal,
        summary: RunSummary,
    ) -> dict[str, int]:
        """The Figure 4 k-ascent as per-k ``run_batch`` waves.

        Same protocol as :func:`repro.analysis.hw_analysis.run_hw_analysis`
        — every instance tries k = 1, 2, ... until its first "yes" — but a
        whole k-level runs as one wave.  Which instances each wave contains
        is derived deterministically from the previous waves' verdicts, so
        after a crash the journal replays the finished prefix and the next
        wave is re-derived identically.
        """
        timeout = self.manifest.timeout
        pending = list(repository)
        hw_high: dict[str, int] = {}
        for k in range(1, self.manifest.max_k + 1):
            if not pending:
                break
            specs = [
                JobSpec.check(e.hypergraph, k, method="hd", timeout=timeout)
                for e in pending
            ]
            runner = self.dispatcher if self.dispatcher is not None else self.engine
            report = runner.run_batch(specs, journal=journal)
            summary.book(report)
            still = []
            for entry, result in zip(pending, report.results):
                if result.verdict == "yes":
                    hw_high[entry.name] = k
                else:
                    still.append(entry)
            pending = still
        return hw_high

    def _ghw_phase(
        self,
        repository: HyperBenchRepository,
        hw_high: dict[str, int],
        journal: Journal,
        summary: RunSummary,
    ) -> None:
        """The Tables 3/4 races: ``portfolio(H, k-1)`` for hw-k instances."""
        timeout = self.manifest.timeout
        for k in self.manifest.ghw_ks:
            if k < 2:
                continue
            specs = [
                JobSpec.portfolio(e.hypergraph, k - 1, timeout=timeout)
                for e in repository
                if hw_high.get(e.name) == k
            ]
            self._run_batch(specs, journal, summary)

    def _frac_phase(
        self,
        repository: HyperBenchRepository,
        hw_high: dict[str, int],
        journal: Journal,
        summary: RunSummary,
    ) -> None:
        """The Table 6 searches: ``fracimprove`` at each instance's hw.

        Table 5 (ImproveHD) is polynomial and deterministic, so it is not
        journalled — the results view computes it live from the stored HDs.
        """
        timeout = self.manifest.effective_frac_timeout
        specs = [
            JobSpec.check(
                e.hypergraph, hw_high[e.name], method=FRAC_METHOD, timeout=timeout
            )
            for e in repository
            if hw_high.get(e.name) in set(self.manifest.hw_values)
        ]
        self._run_batch(specs, journal, summary)


# ------------------------------------------------------------------- status


@dataclass
class ExperimentStatus:
    """A cheap, read-only snapshot of an experiment directory."""

    root: Path
    exists: bool = False
    instances: int = 0
    phases: dict[str, bool] = field(default_factory=dict)
    #: journalled finished jobs per spec kind
    jobs: dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.exists and all(self.phases.get(p, False) for p in PHASES)


def experiment_status(paths: "str | Path | ExperimentPaths") -> ExperimentStatus:
    """Inspect an experiment directory without opening its store."""
    paths = ExperimentPaths.at(paths)
    status = ExperimentStatus(root=paths.root)
    if not paths.manifest.exists():
        return status
    status.exists = True
    records = MetaJournal(paths.meta).load()
    done = {r["phase"] for r in records if r.get("type") == "phase"}
    status.phases = {phase: phase in done for phase in PHASES}
    status.instances = sum(1 for r in records if r.get("type") == "instance")
    if paths.jobs.exists():
        for key in Journal(paths.jobs).load():
            kind = key[0]
            status.jobs[kind] = status.jobs.get(kind, 0) + 1
    return status
