"""Manifest-driven experiment corpora over the generator families.

A *corpus manifest* is a small JSON document describing which instances an
experiment runs on and under which protocol parameters (timeouts, the
Figure 4 ``max_k``, the Tables 3/4 ``ks``, the Tables 5/6 ``hw_values``).
Sections name a *family* — one of the five HyperBench generator classes, the
SQL pipeline workload, structured grids/cliques/cycles at scale, inline
conjunctive queries, or full extensional random CSPs built through
``repro.csp`` — plus a count and an optional per-section seed.  Building the
same manifest twice yields the same corpus: every family is deterministic in
its seed, and every instance is content-addressed downstream by its engine
fingerprint (:func:`repro.engine.fingerprint.fingerprint`), which is how the
runner detects manifest/generator drift on resume.

:func:`default_manifest` mirrors :func:`repro.benchmark.build.
build_default_benchmark` exactly (same per-class counts, same seeds, same
order), so the default corpus is the default benchmark — the equivalence
tests against :func:`repro.analysis.experiments.run_full_study` rest on
this.

>>> manifest = default_manifest(scale=0.05, seed=7)
>>> [s.family for s in manifest.sections]
['cq_application', 'cq_random', 'csp_application', 'csp_random', 'csp_other']
>>> manifest == Manifest.from_dict(manifest.to_dict())
True
"""

from __future__ import annotations

import json
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmark.build import DEFAULT_CLASS_COUNTS
from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.generators import (
    generate_application_cqs,
    generate_application_csps,
    generate_other_csps,
    generate_random_cqs,
    generate_random_csps,
    pebbling_grid,
    random_csp_instance,
)
from repro.benchmark.repository import HyperBenchRepository
from repro.core.hypergraph import Hypergraph
from repro.errors import ReproError

__all__ = [
    "CorpusSection",
    "Family",
    "FAMILIES",
    "Manifest",
    "build_corpus",
    "default_manifest",
]


# ------------------------------------------------------------------ families


@dataclass(frozen=True)
class Family:
    """One way of producing instances: a seeded builder plus its class."""

    name: str
    benchmark_class: BenchmarkClass
    build: Callable[[int, int, dict], list[Hypergraph]]
    description: str = ""


def _rename(h: Hypergraph, name: str) -> Hypergraph:
    return Hypergraph({n: sorted(vs) for n, vs in h.edges.items()}, name=name)


def _build_cq_application(count: int, seed: int, params: dict) -> list[Hypergraph]:
    return generate_application_cqs(count, seed)


def _build_cq_random(count: int, seed: int, params: dict) -> list[Hypergraph]:
    return generate_random_cqs(count, seed)


def _build_csp_application(count: int, seed: int, params: dict) -> list[Hypergraph]:
    return generate_application_csps(count, seed)


def _build_csp_random(count: int, seed: int, params: dict) -> list[Hypergraph]:
    return generate_random_csps(count, seed)


def _build_csp_other(count: int, seed: int, params: dict) -> list[Hypergraph]:
    return generate_other_csps(count, seed)


def _build_sql(count: int, seed: int, params: dict) -> list[Hypergraph]:
    # Imported lazily: the SQL pipeline pulls in the whole Section 5 stack.
    from repro.benchmark.generators.sql_workload import generate_sql_application_cqs

    return generate_sql_application_cqs(
        count, seed, num_dimensions=int(params.get("dimensions", 6))
    )


def _build_grid(count: int, seed: int, params: dict) -> list[Hypergraph]:
    rng = random.Random(seed)
    lo, hi = (int(v) for v in params.get("size", (3, 8)))
    out = []
    for i in range(count):
        rows, cols = rng.randint(lo, hi), rng.randint(lo, hi)
        out.append(
            _rename(pebbling_grid(rows, cols), f"grid_{seed}_{i:04d}_{rows}x{cols}")
        )
    return out


def _build_clique(count: int, seed: int, params: dict) -> list[Hypergraph]:
    rng = random.Random(seed)
    lo, hi = (int(v) for v in params.get("size", (4, 9)))
    out = []
    for i in range(count):
        n = rng.randint(lo, hi)
        edges = {
            f"e{a}_{b}": [f"v{a}", f"v{b}"]
            for a in range(n)
            for b in range(a + 1, n)
        }
        out.append(Hypergraph(edges, name=f"clique_{seed}_{i:04d}_K{n}"))
    return out


def _build_cycle(count: int, seed: int, params: dict) -> list[Hypergraph]:
    rng = random.Random(seed)
    lo, hi = (int(v) for v in params.get("size", (3, 24)))
    out = []
    for i in range(count):
        n = rng.randint(lo, hi)
        edges = {f"c{j}": [f"x{j}", f"x{(j + 1) % n}"] for j in range(n)}
        out.append(Hypergraph(edges, name=f"cycle_{seed}_{i:04d}_n{n}"))
    return out


def _build_cq_inline(count: int, seed: int, params: dict) -> list[Hypergraph]:
    # Inline datalog-style queries through the repro.cq front end; ``count``
    # is ignored — the section carries its instances in ``params``.
    from repro.cq import cq_to_hypergraph, parse_cq

    queries = params.get("queries")
    if not queries:
        raise ReproError("the 'cq' family needs params={'queries': [...]}")
    return [
        cq_to_hypergraph(parse_cq(text, name=f"cq_inline_{i:04d}"))
        for i, text in enumerate(queries)
    ]


def _build_csp_model(count: int, seed: int, params: dict) -> list[Hypergraph]:
    # Full extensional CSP instances through the repro.csp model layer (the
    # other csp families generate hypergraphs directly).
    from repro.csp import csp_to_hypergraph

    out = []
    for i in range(count):
        instance = random_csp_instance(
            int(params.get("variables", 10)),
            int(params.get("constraints", 14)),
            int(params.get("domain", 3)),
            float(params.get("tightness", 0.4)),
            seed=seed + i,
        )
        out.append(_rename(csp_to_hypergraph(instance), f"csp_model_{seed}_{i:04d}"))
    return out


#: Registry of corpus families, keyed by the manifest's ``family`` string.
FAMILIES: dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            "cq_application",
            BenchmarkClass.CQ_APPLICATION,
            _build_cq_application,
            "application-shaped conjunctive queries",
        ),
        Family(
            "cq_random",
            BenchmarkClass.CQ_RANDOM,
            _build_cq_random,
            "random conjunctive queries",
        ),
        Family(
            "csp_application",
            BenchmarkClass.CSP_APPLICATION,
            _build_csp_application,
            "application-shaped CSPs",
        ),
        Family(
            "csp_random",
            BenchmarkClass.CSP_RANDOM,
            _build_csp_random,
            "random CSPs (hypergraph-level)",
        ),
        Family(
            "csp_other",
            BenchmarkClass.CSP_OTHER,
            _build_csp_other,
            "structured CSPs (grids, circuits)",
        ),
        Family(
            "sql",
            BenchmarkClass.CQ_APPLICATION,
            _build_sql,
            "CQs derived through the Section 5 SQL pipeline",
        ),
        Family(
            "grid",
            BenchmarkClass.CSP_OTHER,
            _build_grid,
            "pebbling grids at random sizes",
        ),
        Family(
            "clique",
            BenchmarkClass.CSP_OTHER,
            _build_clique,
            "binary-edge cliques K_n (hw = ceil(n/2))",
        ),
        Family(
            "cycle",
            BenchmarkClass.CSP_OTHER,
            _build_cycle,
            "binary-edge cycles (hw = 2)",
        ),
        Family(
            "cq",
            BenchmarkClass.CQ_APPLICATION,
            _build_cq_inline,
            "inline conjunctive queries via repro.cq",
        ),
        Family(
            "csp",
            BenchmarkClass.CSP_RANDOM,
            _build_csp_model,
            "extensional random CSP instances via repro.csp",
        ),
    )
}


# ------------------------------------------------------------------ manifest


@dataclass
class CorpusSection:
    """One manifest section: a family, how many instances, which seed."""

    family: str
    count: int = 0
    seed: int | None = None  # None -> the manifest seed
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload: dict = {"family": self.family, "count": self.count}
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.params:
            payload["params"] = self.params
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusSection":
        if payload.get("family") not in FAMILIES:
            raise ReproError(
                f"unknown corpus family {payload.get('family')!r} "
                f"(known: {', '.join(sorted(FAMILIES))})"
            )
        return cls(
            family=payload["family"],
            count=int(payload.get("count", 0)),
            seed=payload.get("seed"),
            params=dict(payload.get("params", {})),
        )


@dataclass
class Manifest:
    """The full experiment description: corpus sections + protocol knobs."""

    name: str = "experiment"
    seed: int = 42
    #: render reports with zeroed runtimes so they are byte-stable across
    #: independent runs (wall-clock seconds never are)
    deterministic: bool = True
    sections: list[CorpusSection] = field(default_factory=list)
    timeout: float | None = 1.0
    frac_timeout: float | None = None  # None -> same as ``timeout``
    max_k: int = 6
    ghw_ks: list[int] = field(default_factory=lambda: [3, 4, 5, 6])
    hw_values: list[int] = field(default_factory=lambda: [2, 3, 4, 5, 6])

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "deterministic": self.deterministic,
            "sections": [s.to_dict() for s in self.sections],
            "protocol": {
                "timeout": self.timeout,
                "frac_timeout": self.frac_timeout,
                "max_k": self.max_k,
                "ghw_ks": list(self.ghw_ks),
                "hw_values": list(self.hw_values),
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Manifest":
        protocol = payload.get("protocol", {})
        return cls(
            name=str(payload.get("name", "experiment")),
            seed=int(payload.get("seed", 42)),
            deterministic=bool(payload.get("deterministic", True)),
            sections=[CorpusSection.from_dict(s) for s in payload.get("sections", [])],
            timeout=protocol.get("timeout", 1.0),
            frac_timeout=protocol.get("frac_timeout"),
            max_k=int(protocol.get("max_k", 6)),
            ghw_ks=[int(k) for k in protocol.get("ghw_ks", [3, 4, 5, 6])],
            hw_values=[int(k) for k in protocol.get("hw_values", [2, 3, 4, 5, 6])],
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "Manifest":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read manifest {path}: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @property
    def effective_frac_timeout(self) -> float | None:
        return self.frac_timeout if self.frac_timeout is not None else self.timeout


#: Class order of the default benchmark; the manifest must add sections in
#: exactly this order so instance iteration matches ``build_default_benchmark``.
_DEFAULT_FAMILIES: dict[BenchmarkClass, str] = {
    BenchmarkClass.CQ_APPLICATION: "cq_application",
    BenchmarkClass.CQ_RANDOM: "cq_random",
    BenchmarkClass.CSP_APPLICATION: "csp_application",
    BenchmarkClass.CSP_RANDOM: "csp_random",
    BenchmarkClass.CSP_OTHER: "csp_other",
}


def default_manifest(
    scale: float = 0.25,
    seed: int = 42,
    name: str = "experiment",
    timeout: float | None = 1.0,
    max_k: int = 6,
    deterministic: bool = True,
) -> Manifest:
    """A manifest whose corpus equals ``build_default_benchmark(scale, seed)``.

    Counts, seeds, generator order and the minimum-two-per-class floor all
    mirror the default build, so the pipeline's tables at this manifest match
    :func:`~repro.analysis.experiments.run_full_study` at the same arguments.
    """
    sections = [
        CorpusSection(_DEFAULT_FAMILIES[cls], max(2, round(base * scale)))
        for cls, base in DEFAULT_CLASS_COUNTS.items()
    ]
    return Manifest(
        name=name,
        seed=seed,
        deterministic=deterministic,
        sections=sections,
        timeout=timeout,
        max_k=max_k,
    )


def build_corpus(manifest: Manifest) -> HyperBenchRepository:
    """Materialise a manifest into a repository (deterministic in its seeds).

    Every entry is tagged with its family in ``entry.extra["family"]``, which
    rides into CSV/JSON exports via ``BenchmarkEntry.as_record``.  Duplicate
    instance names across sections are a manifest error (the repository
    rejects them).
    """
    repository = HyperBenchRepository(name=manifest.name)
    for section in manifest.sections:
        family = FAMILIES.get(section.family)
        if family is None:
            raise ReproError(f"unknown corpus family {section.family!r}")
        seed = manifest.seed if section.seed is None else section.seed
        for hypergraph in family.build(section.count, seed, section.params):
            entry = repository.add(hypergraph, family.benchmark_class)
            entry.extra["family"] = family.name
    return repository
