"""``repro.experiment`` — the corpus → runner → report pipeline.

The paper's evaluation as one reproducible, resumable surface (the ROADMAP's
"scenario diversity" item): a JSON :class:`~repro.experiment.corpus.Manifest`
describes the corpus and protocol, the
:class:`~repro.experiment.runner.ExperimentRunner` fans it through
``DecompositionEngine.run_batch`` (or a queue
:class:`~repro.engine.remote.Dispatcher`) with crash-safe journals, the
:class:`~repro.experiment.results.ExperimentResults` view lazily replays the
original analysis protocols against the persisted store, and
:mod:`~repro.experiment.report` renders Tables 1–6 / Figures 3–5 as
markdown, HTML, CSV or JSON.  CLI: ``repro experiment run|resume|status|
report``; docs: ``docs/EXPERIMENTS.md``.
"""

from repro.experiment.corpus import (
    FAMILIES,
    CorpusSection,
    Family,
    Manifest,
    build_corpus,
    default_manifest,
)
from repro.experiment.report import (
    ARTEFACT_ORDER,
    REPORT_FORMATS,
    render_csv,
    render_html,
    render_json,
    render_markdown,
    write_report,
)
from repro.experiment.results import ExperimentResults
from repro.experiment.runner import (
    PHASES,
    ExperimentError,
    ExperimentPaths,
    ExperimentRunner,
    ExperimentStatus,
    MetaJournal,
    RunSummary,
    experiment_status,
)

__all__ = [
    "ARTEFACT_ORDER",
    "FAMILIES",
    "PHASES",
    "REPORT_FORMATS",
    "CorpusSection",
    "ExperimentError",
    "ExperimentPaths",
    "ExperimentResults",
    "ExperimentRunner",
    "ExperimentStatus",
    "Family",
    "Manifest",
    "MetaJournal",
    "RunSummary",
    "build_corpus",
    "default_manifest",
    "experiment_status",
    "render_csv",
    "render_html",
    "render_json",
    "render_markdown",
    "write_report",
]
