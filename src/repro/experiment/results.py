"""Lazily-computed results view over an experiment directory.

`ExperimentResults` is the read side of the pipeline (the shape follows
fuzzbench's ``experiment_results.py``): every table, figure and aggregate
is a cached property, computed on first access from the experiment's
journals and result store — nothing is computed for a report that does not
ask for it.

Equivalence with :func:`repro.analysis.experiments.run_full_study` holds by
construction, not by reimplementation: the view rebuilds the corpus from
the manifest, restores the journalled statistics, and then runs the
*original* analysis protocols (`run_hw_analysis`, `run_ghw_analysis`,
`run_fractional_analysis`) against a replay engine whose every answer comes
from the experiment's store.  In complete mode a store miss raises
:class:`~repro.experiment.runner.ExperimentError` instead of silently
computing fresh; ``partial=True`` relaxes that for in-flight experiments
(missing checks then run in-process, which is exactly what the sequential
study would do).

Deterministic mode (the manifest's default) wraps the store in a proxy
that zeroes all replayed runtimes, making rendered reports byte-identical
across independent runs of the same manifest — wall-clock seconds never
are.  Pass ``deterministic=False`` to keep the measured timings.
"""

from __future__ import annotations

import dataclasses
from functools import cached_property

from repro.analysis.experiments import StudyResult, assemble_study
from repro.analysis.fractional_analysis import run_fractional_analysis
from repro.analysis.ghw_analysis import run_ghw_analysis
from repro.analysis.hw_analysis import run_hw_analysis
from repro.benchmark.repository import HyperBenchRepository
from repro.core.properties import HypergraphStatistics, compute_statistics
from repro.engine.engine import DecompositionEngine
from repro.engine.methods import PORTFOLIO_KEY
from repro.engine.shards import open_result_store
from repro.experiment.corpus import Manifest, build_corpus
from repro.experiment.runner import (
    ExperimentError,
    ExperimentPaths,
    MetaJournal,
    experiment_status,
)

__all__ = ["ExperimentResults"]


class _ZeroSecondsStore:
    """Store proxy reporting every replayed verdict at 0.0 seconds.

    Verdicts, decompositions and per-algorithm metadata pass through
    unchanged; only the timing columns of the rendered tables are affected.
    """

    def __init__(self, store):
        self._store = store

    def get(self, *args, **kwargs):
        stored = self._store.get(*args, **kwargs)
        if stored is None:
            return None
        extra = stored.extra
        if extra and "per" in extra:
            extra = {
                **extra,
                "per": {
                    name: [row[0], 0.0, *row[2:]]
                    for name, row in extra["per"].items()
                },
            }
        return dataclasses.replace(stored, seconds=0.0, extra=extra)

    def __getattr__(self, name):
        return getattr(self._store, name)


class _ReplayEngine(DecompositionEngine):
    """Sequential engine that answers from the store; ``strict`` forbids work.

    The frac study's in-process fallback bypasses ``_execute`` (it calls
    ``frac_improve_outcome`` directly), so in complete experiments a missing
    ``fracimprove`` row recomputes deterministically instead of raising —
    the hw/ghw guards above it already prove the store is the right one.
    """

    def __init__(self, store, strict: bool):
        super().__init__(store=store, jobs=1)
        self.strict = strict

    def _execute(self, method, hypergraph, k, timeout):
        if self.strict:
            raise ExperimentError(
                f"no stored result for {method} k={k} on {hypergraph.name!r} "
                "— the experiment is incomplete; `repro experiment resume` "
                "it or read it with partial=True"
            )
        return super()._execute(method, hypergraph, k, timeout)

    def _portfolio_locked(self, hypergraph, k, timeout):
        if self.strict:
            from repro.engine.fingerprint import fingerprint

            outcome, _, _ = self._lookup(
                fingerprint(hypergraph), hypergraph, PORTFOLIO_KEY, k, timeout,
                record=False,
            )
            if outcome is None:
                raise ExperimentError(
                    f"no stored portfolio verdict for k={k} on "
                    f"{hypergraph.name!r} — the experiment is incomplete; "
                    "`repro experiment resume` it or read it with partial=True"
                )
        return super()._portfolio_locked(hypergraph, k, timeout)


class ExperimentResults:
    """Read-side view: tables/figures as lazy properties over the journals.

    >>> results = ExperimentResults("exp/")            # doctest: +SKIP
    >>> results.study.results["table1"].rendered       # doctest: +SKIP
    """

    def __init__(
        self,
        root,
        deterministic: bool | None = None,
        partial: bool = False,
    ):
        self.paths = ExperimentPaths.at(root)
        if not self.paths.manifest.exists():
            raise ExperimentError(f"no experiment at {self.paths.root}")
        self.manifest = Manifest.from_file(self.paths.manifest)
        self.deterministic = (
            self.manifest.deterministic if deterministic is None else deterministic
        )
        self.partial = partial
        self.status = experiment_status(self.paths)
        if not partial and not self.status.complete:
            missing = [p for p, done in self.status.phases.items() if not done]
            raise ExperimentError(
                f"experiment at {self.paths.root} is incomplete "
                f"(missing phases: {', '.join(missing) or 'all'}); "
                "`repro experiment resume` it or pass partial=True"
            )

    # ------------------------------------------------------------ plumbing

    @cached_property
    def _records(self) -> list[dict]:
        return MetaJournal(self.paths.meta).load()

    @cached_property
    def _engine(self) -> _ReplayEngine:
        store = open_result_store(self.paths.store)
        if self.deterministic:
            store = _ZeroSecondsStore(store)
        return _ReplayEngine(store, strict=not self.partial)

    def close(self) -> None:
        if "_engine" in self.__dict__:
            self._engine.close()

    def __enter__(self) -> "ExperimentResults":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ analyses

    @cached_property
    def repository(self) -> HyperBenchRepository:
        """The corpus with journalled statistics restored (no bounds yet)."""
        repository = build_corpus(self.manifest)
        stats = {
            r["name"]: r.get("stats")
            for r in self._records
            if r.get("type") == "stats"
        }
        for entry in repository:
            payload = stats.get(entry.name)
            if payload is not None:
                entry.statistics = HypergraphStatistics(**payload)
            elif entry.name not in stats:
                # never journalled (partial experiments) — compute live,
                # it's deterministic; a journalled null stays None (the
                # instance timed out in a parallel statistics pass)
                entry.statistics = compute_statistics(entry.hypergraph)
        return repository

    @cached_property
    def hw(self):
        """The Figure 4 sweep, replayed (fills the repository's hw bounds)."""
        return run_hw_analysis(
            self.repository,
            max_k=self.manifest.max_k,
            timeout=self.manifest.timeout,
            engine=self._engine,
        )

    @cached_property
    def ghw(self):
        """The Tables 3/4 races, replayed (requires the hw bounds)."""
        self.hw
        return run_ghw_analysis(
            self.repository,
            ks=tuple(self.manifest.ghw_ks),
            timeout=self.manifest.timeout,
            engine=self._engine,
        )

    @cached_property
    def fractional(self):
        """The Tables 5/6 study: ImproveHD live, FracImproveHD from store."""
        self.hw
        return run_fractional_analysis(
            self.repository,
            hw_values=tuple(self.manifest.hw_values),
            timeout=self.manifest.effective_frac_timeout,
            engine=self._engine,
        )

    @cached_property
    def study(self) -> StudyResult:
        """All paper artefacts, assembled exactly like ``run_full_study``."""
        self.hw, self.ghw  # protocol order: ghw reads hw bounds
        return assemble_study(self.repository, self.hw, self.ghw, self.fractional)

    # ----------------------------------------------------------- aggregates

    @cached_property
    def class_counts(self) -> dict[str, int]:
        """Instances per benchmark class (from the corpus, not the store)."""
        counts: dict[str, int] = {}
        for entry in self.repository:
            key = str(entry.benchmark_class)
            counts[key] = counts.get(key, 0) + 1
        return counts

    @cached_property
    def family_counts(self) -> dict[str, int]:
        """Instances per corpus family."""
        counts: dict[str, int] = {}
        for entry in self.repository:
            key = str(entry.extra.get("family"))
            counts[key] = counts.get(key, 0) + 1
        return counts

    @cached_property
    def method_verdicts(self) -> dict[str, dict[str, int]]:
        """Journalled verdict counts per method (hd, portfolio, fracimprove)."""
        from repro.engine.jobs import Journal

        counts: dict[str, dict[str, int]] = {}
        if self.paths.jobs.exists():
            for key, payload in Journal(self.paths.jobs).load().items():
                method = key[2] if key[0] == "check" else key[0]
                per = counts.setdefault(method, {})
                verdict = payload.get("verdict", "?")
                per[verdict] = per.get(verdict, 0) + 1
        return counts

    @cached_property
    def unresolved(self) -> list[str]:
        """Instances with no hw upper bound after the full sweep."""
        return list(self.hw.unresolved)

    def render_all(self) -> str:
        return self.study.render_all()
