"""Data-driven report rendering for experiment results.

Every renderer walks the same artefact list — the paper's Tables 1–6 and
Figures 3–5 in their section order, then any extras alphabetically — and
emits one of four formats: GitHub-flavoured markdown tables, a standalone
static HTML page, a long-format CSV (``artefact,row,column,value`` — the
SimCash results-generator shape, trivially loadable into pandas/R), or a
single JSON document.  All four are pure functions of the structured rows:
no timestamps, no environment probes, stable ``\\n`` line endings — with a
deterministic results view the bytes are reproducible across runs, which
the golden-file tests pin.

Renderers accept either an :class:`~repro.experiment.results.
ExperimentResults` view or a bare :class:`~repro.analysis.experiments.
StudyResult`.
"""

from __future__ import annotations

import csv
import html
import io
import json
from pathlib import Path

from repro.analysis.experiments import ExperimentResult, StudyResult

__all__ = [
    "ARTEFACT_ORDER",
    "REPORT_FORMATS",
    "render_csv",
    "render_html",
    "render_json",
    "render_markdown",
    "write_report",
]

#: The paper's artefacts in section order (Section 6.1 through 6.5).
ARTEFACT_ORDER = (
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "table3",
    "table4",
    "table5",
    "table6",
)

REPORT_FORMATS = ("md", "html", "csv", "json")


def _study(results) -> StudyResult:
    return results if isinstance(results, StudyResult) else results.study


def _artefacts(results) -> list[ExperimentResult]:
    table = _study(results).results
    ordered = [table[key] for key in ARTEFACT_ORDER if key in table]
    extras = [table[key] for key in sorted(table) if key not in ARTEFACT_ORDER]
    return ordered + extras


def _meta(results) -> dict:
    """Header facts: only what is deterministic in the experiment inputs."""
    meta: dict = {"instances": len(_study(results).repository)}
    manifest = getattr(results, "manifest", None)
    if manifest is not None:
        meta["name"] = manifest.name
        meta["seed"] = manifest.seed
        meta["deterministic"] = bool(getattr(results, "deterministic", True))
    return meta


def _cell(value) -> str:
    return "" if value is None else str(value)


# ------------------------------------------------------------------ markdown


def render_markdown(results, title: str | None = None) -> str:
    meta = _meta(results)
    lines = [f"# {title or meta.get('name', 'Experiment report')}", ""]
    lines.append(
        "Instances: %d%s" % (
            meta["instances"],
            "  ·  seed: %s" % meta["seed"] if "seed" in meta else "",
        )
    )
    if meta.get("deterministic"):
        lines.append("Runtimes are zeroed (deterministic report mode).")
    for artefact in _artefacts(results):
        lines += ["", f"## {artefact.title}", ""]
        header = [_cell(h).replace("|", "\\|") for h in artefact.headers]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(" --- " for _ in header) + "|")
        for row in artefact.rows:
            cells = [_cell(v).replace("|", "\\|") for v in row]
            lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- html

_HTML_STYLE = (
    "body{font-family:sans-serif;margin:2em}"
    "table{border-collapse:collapse;margin:1em 0}"
    "th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:right}"
    "th{background:#eee}td:first-child,th:first-child{text-align:left}"
)


def render_html(results, title: str | None = None) -> str:
    meta = _meta(results)
    heading = html.escape(title or str(meta.get("name", "Experiment report")))
    parts = [
        "<!doctype html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{heading}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{heading}</h1>",
        "<p>Instances: %d%s</p>" % (
            meta["instances"],
            " · seed: %s" % meta["seed"] if "seed" in meta else "",
        ),
    ]
    if meta.get("deterministic"):
        parts.append("<p>Runtimes are zeroed (deterministic report mode).</p>")
    for artefact in _artefacts(results):
        parts.append(f"<h2>{html.escape(artefact.title)}</h2>")
        parts.append("<table><tr>")
        parts += [f"<th>{html.escape(_cell(h))}</th>" for h in artefact.headers]
        parts.append("</tr>")
        for row in artefact.rows:
            parts.append(
                "<tr>"
                + "".join(f"<td>{html.escape(_cell(v))}</td>" for v in row)
                + "</tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ----------------------------------------------------------------------- csv


def render_csv(results) -> str:
    """Long format: one line per cell, ready for pandas/R group-bys."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["artefact", "row", "column", "value"])
    for artefact in _artefacts(results):
        for row_index, row in enumerate(artefact.rows):
            for header, value in zip(artefact.headers, row):
                writer.writerow(
                    [artefact.experiment_id, row_index, header, _cell(value)]
                )
    return buffer.getvalue()


# ---------------------------------------------------------------------- json


def render_json(results) -> str:
    payload = {
        **_meta(results),
        "artefacts": [
            {
                "id": artefact.experiment_id,
                "title": artefact.title,
                "headers": [str(h) for h in artefact.headers],
                "rows": artefact.rows,
            }
            for artefact in _artefacts(results)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


# --------------------------------------------------------------------- files

_RENDERERS = {
    "md": render_markdown,
    "html": render_html,
    "csv": render_csv,
    "json": render_json,
}


def write_report(
    results,
    dest: str | Path,
    formats: tuple[str, ...] = REPORT_FORMATS,
) -> dict[str, Path]:
    """Write ``report.<fmt>`` for each requested format; returns the paths."""
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for fmt in formats:
        if fmt not in _RENDERERS:
            raise ValueError(f"unknown report format {fmt!r} (know {REPORT_FORMATS})")
        path = dest / f"report.{fmt}"
        path.write_text(_RENDERERS[fmt](results))
        written[fmt] = path
    return written
