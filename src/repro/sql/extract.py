"""Conjunctive-core extraction and view expansion (Sections 5.2–5.3).

Every surviving dependency-graph node is reduced to a :class:`SimpleQuery`:
a flat list of table instances, equi-join conditions and constant bindings —
exactly the structure-determining content of a conjunctive query in SQL form
(form (3) of Section 5.4).  Everything else (comparisons with ``<``/``>``,
``LIKE``, disjunctions, negations, ``IN`` value lists...) is part of the
query's non-conjunctive decoration and is dropped, as for Listing 1.

Views — from ``WITH`` clauses and from derived tables in ``FROM`` — are
*expanded into* the referencing query (Listing 3 / Figure 2): the view's
tables, joins and constants are inlined under fresh bindings and references
to the view's output columns are rewritten to the underlying attributes.
Views defined by set operations cannot be inlined conjunctively and are kept
as opaque relations over their output columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnsupportedSQLError
from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    InCondition,
    Literal,
    SelectItem,
    SelectQuery,
    SetOperation,
    SubquerySource,
    TableRef,
)
from repro.sql.dependency import build_dependency_graph
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema

__all__ = ["TableInstance", "SimpleQuery", "extract_simple_queries", "to_simple_query"]

ColumnKey = tuple[str, str]  # (binding, attribute)


@dataclass(frozen=True)
class TableInstance:
    """One occurrence of a relation in the flattened FROM list."""

    relation: str
    binding: str
    attributes: tuple[str, ...]


@dataclass
class SimpleQuery:
    """The conjunctive core of one extracted query.

    ``outputs`` maps exported column names to underlying attributes — used
    when this query is a view being expanded into another query.
    """

    name: str
    tables: list[TableInstance] = field(default_factory=list)
    joins: list[tuple[ColumnKey, ColumnKey]] = field(default_factory=list)
    constants: list[tuple[ColumnKey, str]] = field(default_factory=list)
    outputs: dict[str, ColumnKey] = field(default_factory=dict)

    @property
    def num_atoms(self) -> int:
        return len(self.tables)

    def __str__(self) -> str:
        tables = ", ".join(f"{t.relation} {t.binding}" for t in self.tables)
        joins = " AND ".join(
            f"{a}.{c1} = {b}.{c2}" for (a, c1), (b, c2) in self.joins
        )
        return f"SimpleQuery({self.name}: FROM {tables} WHERE {joins or 'true'})"


class _Extractor:
    """Builds a :class:`SimpleQuery` from one SELECT block."""

    def __init__(self, schema: Schema, name: str):
        self.schema = schema
        self.name = name
        self.result = SimpleQuery(name)
        #: binding → TableInstance, for column resolution
        self.bindings: dict[str, TableInstance] = {}
        #: binding → (output column → underlying key), for expanded views
        self.view_maps: dict[str, dict[str, ColumnKey]] = {}
        self._fresh = 0

    # ------------------------------------------------------------- bindings

    def _register(self, instance: TableInstance) -> None:
        if instance.binding in self.bindings:
            raise UnsupportedSQLError(
                f"duplicate table binding {instance.binding!r} in {self.name}"
            )
        self.bindings[instance.binding] = instance
        self.result.tables.append(instance)

    def add_base_table(self, ref: TableRef) -> None:
        attributes = self.schema.attributes(ref.name)
        self._register(TableInstance(ref.name, ref.binding, attributes))

    def add_view_instance(
        self,
        binding: str,
        definition: SelectQuery | SetOperation,
        views: dict[str, SelectQuery | SetOperation],
    ) -> None:
        """Expand a view occurrence under ``binding`` into this query."""
        if isinstance(definition, SetOperation):
            # Set operations cannot be inlined conjunctively; keep the view
            # opaque over its output columns (taken from the first branch).
            branch = definition.branches()[0]
            inner = to_simple_query(branch, self.schema, f"{self.name}${binding}", views)
            columns = tuple(inner.outputs)
            self._register(TableInstance(f"view:{binding}", binding, columns))
            return
        inner = to_simple_query(definition, self.schema, f"{self.name}${binding}", views)
        rename = {
            t.binding: f"{binding}__{t.binding}" for t in inner.tables
        }
        for table in inner.tables:
            self._register(
                TableInstance(table.relation, rename[table.binding], table.attributes)
            )
        remap = lambda key: (rename[key[0]], key[1])  # noqa: E731 - tiny local helper
        self.result.joins.extend(
            (remap(left), remap(right)) for left, right in inner.joins
        )
        self.result.constants.extend(
            (remap(key), value) for key, value in inner.constants
        )
        self.view_maps[binding] = {
            out: remap(key) for out, key in inner.outputs.items()
        }

    # ------------------------------------------------------------ resolution

    def resolve(self, ref: ColumnRef) -> ColumnKey:
        """Resolve a column reference to an underlying ``(binding, attribute)``."""
        if ref.table is not None:
            if ref.table in self.view_maps:
                mapping = self.view_maps[ref.table]
                if ref.column not in mapping:
                    raise UnsupportedSQLError(
                        f"view {ref.table!r} exports no column {ref.column!r}"
                    )
                return mapping[ref.column]
            instance = self.bindings.get(ref.table)
            if instance is None:
                raise UnsupportedSQLError(f"unknown table binding {ref.table!r}")
            if ref.column not in instance.attributes:
                raise UnsupportedSQLError(
                    f"table {instance.relation!r} has no column {ref.column!r}"
                )
            return (instance.binding, ref.column)
        # Unqualified: must resolve in exactly one binding or view.
        hits: list[ColumnKey] = []
        for instance in self.bindings.values():
            if ref.column in instance.attributes:
                hits.append((instance.binding, ref.column))
        for binding, mapping in self.view_maps.items():
            if ref.column in mapping:
                hits.append(mapping[ref.column])
        if not hits:
            raise UnsupportedSQLError(f"column {ref.column!r} resolves nowhere")
        if len(hits) > 1:
            raise UnsupportedSQLError(f"column {ref.column!r} is ambiguous")
        return hits[0]

    # ------------------------------------------------------------ conditions

    def add_condition(self, condition: object) -> None:
        """Fold one condition into the conjunctive core (or drop it)."""
        if isinstance(condition, BooleanOp) and condition.op == "AND":
            for operand in condition.operands:
                self.add_condition(operand)
            return
        if isinstance(condition, Comparison) and condition.is_equality:
            left, right = condition.left, condition.right
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                self.result.joins.append((self.resolve(left), self.resolve(right)))
            elif (
                isinstance(left, ColumnRef)
                and isinstance(right, Literal)
                and right.kind != "expr"
            ):
                self.result.constants.append((self.resolve(left), right.value))
            elif (
                isinstance(left, Literal)
                and left.kind != "expr"
                and isinstance(right, ColumnRef)
            ):
                self.result.constants.append((self.resolve(right), left.value))
            # constant = constant and expression comparisons carry no
            # structure; dropped.
            return
        if isinstance(condition, InCondition) and condition.subquery is None:
            # col IN (v): a single-value list is a disguised constant.
            if len(condition.values) == 1 and not condition.negated:
                self.result.constants.append(
                    (self.resolve(condition.column), condition.values[0].value)
                )
            return
        # Everything else (OR groups, NOT, <, LIKE, IN/EXISTS subqueries...)
        # is outside the conjunctive core and contributes no structure; the
        # subqueries themselves are handled by the dependency graph.

    # --------------------------------------------------------------- outputs

    def add_outputs(self, items: list[SelectItem]) -> None:
        for item in items:
            if item.is_star:
                instances = (
                    [self.bindings[item.star_table]]
                    if item.star_table and item.star_table in self.bindings
                    else list(self.bindings.values())
                )
                for instance in instances:
                    for attr in instance.attributes:
                        self.result.outputs.setdefault(attr, (instance.binding, attr))
                if item.star_table and item.star_table in self.view_maps:
                    for out, key in self.view_maps[item.star_table].items():
                        self.result.outputs.setdefault(out, key)
                elif not item.star_table:
                    for mapping in self.view_maps.values():
                        for out, key in mapping.items():
                            self.result.outputs.setdefault(out, key)
                continue
            if isinstance(item.expr, ColumnRef):
                key = self.resolve(item.expr)
                name = item.alias or item.expr.column
                self.result.outputs[name] = key
            # Literal projections export no structure; dropped.


def to_simple_query(
    select: SelectQuery,
    schema: Schema,
    name: str,
    inherited_views: dict[str, SelectQuery | SetOperation] | None = None,
) -> SimpleQuery:
    """Reduce one SELECT block to its conjunctive core, expanding views."""
    views: dict[str, SelectQuery | SetOperation] = dict(inherited_views or {})
    views.update(select.views)

    extractor = _Extractor(schema, name)
    for src in select.sources:
        if isinstance(src, SubquerySource):
            extractor.add_view_instance(src.binding, src.query, views)
        elif src.name in views:
            extractor.add_view_instance(src.binding, views[src.name], views)
        else:
            extractor.add_base_table(src)
    if select.where is not None:
        extractor.add_condition(select.where)
    extractor.add_outputs(select.select)
    return extractor.result


def extract_simple_queries(
    sql: str | SelectQuery | SetOperation,
    schema: Schema,
    name: str = "q",
    skip_unsupported: bool = True,
) -> list[SimpleQuery]:
    """The full Section 5.3 pipeline for one SQL statement.

    Parses (if necessary), builds the dependency graph, eliminates correlated
    subqueries, and extracts one :class:`SimpleQuery` per surviving node that
    is analysed separately.  View-like nodes (WITH views, derived tables) are
    inlined into their referencing query instead of producing a standalone
    entry.  With ``skip_unsupported``, queries the dialect cannot resolve are
    skipped (the paper likewise drops unparsable SQLShare queries).
    """
    statement = parse_sql(sql) if isinstance(sql, str) else sql
    graph = build_dependency_graph(statement)
    results: list[SimpleQuery] = []
    for node in graph.surviving_queries():
        if ".v" in node.label or ".f" in node.label:
            continue  # inlined into the parent by view expansion
        label = name if node.label == "q" else f"{name}:{node.label}"
        try:
            results.append(to_simple_query(node.query, schema, label))
        except UnsupportedSQLError:
            if not skip_unsupported:
                raise
    return results
