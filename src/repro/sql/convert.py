"""SimpleQuery → hypergraph conversion (Section 5.4).

Starting from the FROM-induced hypergraph (one vertex per attribute of each
table instance, one edge per instance) the WHERE conditions modify it:

* an equi-join ``r_i.A = r_j.B`` *merges* the two vertices (we use a
  union–find over attribute occurrences);
* a constant condition ``r_i.A = c`` *removes* the vertex from every edge.

Finally empty edges and duplicate edges are eliminated.  The SELECT clause is
ignored — it does not affect the structure.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph
from repro.sql.extract import SimpleQuery, extract_simple_queries
from repro.sql.schema import Schema

__all__ = ["simple_query_to_hypergraph", "sql_to_hypergraphs"]


class _UnionFind:
    """Union–find over vertex ids with deterministic representative names."""

    def __init__(self):
        self.parent: dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:  # path compression
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # Keep the lexicographically smaller name as representative so the
        # output is deterministic and readable.
        keep, drop = (ra, rb) if ra <= rb else (rb, ra)
        self.parent[drop] = keep


def simple_query_to_hypergraph(query: SimpleQuery, dedupe: bool = True) -> Hypergraph:
    """Convert one conjunctive core into its hypergraph."""
    union_find = _UnionFind()
    for table in query.tables:
        for attr in table.attributes:
            union_find.add(f"{table.binding}.{attr}")

    for (b1, c1), (b2, c2) in query.joins:
        union_find.union(f"{b1}.{c1}", f"{b2}.{c2}")

    removed = {
        union_find.find(f"{binding}.{column}")
        for (binding, column), _value in query.constants
    }
    # A vertex merged into a constant-bound class is gone as well, so the
    # removal set must be computed on representatives *after* all unions.
    edges: dict[str, frozenset[str]] = {}
    for table in query.tables:
        vertex_set = frozenset(
            union_find.find(f"{table.binding}.{attr}")
            for attr in table.attributes
        ) - removed
        if vertex_set:
            edges[table.binding] = vertex_set
    h = Hypergraph(edges, name=query.name)
    if dedupe:
        h = h.dedupe()
    return h


def sql_to_hypergraphs(
    sql: str,
    schema: Schema,
    name: str = "q",
    min_atoms: int = 1,
    dedupe: bool = True,
) -> list[Hypergraph]:
    """The whole pipeline: SQL text → list of hypergraphs.

    ``min_atoms`` drops trivially acyclic extracted queries (the paper keeps
    SQLShare queries only when they have at least 3 atoms).
    """
    hypergraphs = []
    for simple in extract_simple_queries(sql, schema, name=name):
        if simple.num_atoms < min_atoms:
            continue
        h = simple_query_to_hypergraph(simple, dedupe=dedupe)
        if h.num_edges:
            hypergraphs.append(h)
    return hypergraphs
