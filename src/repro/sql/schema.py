"""Relational schemas for the SQL pipeline.

A schema maps relation names to ordered attribute tuples; the extraction
pipeline needs it to expand ``*`` projections, to resolve unqualified column
references, and to build one hypergraph vertex per attribute occurrence
(Section 5.4: "for each attribute A_i of r, create a vertex").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import UnsupportedSQLError

__all__ = ["Schema"]


class Schema:
    """An immutable relation-name → attribute-tuple mapping."""

    def __init__(self, relations: Mapping[str, Iterable[str]]):
        self._relations = {
            str(name).lower(): tuple(str(a).lower() for a in attrs)
            for name, attrs in relations.items()
        }
        for name, attrs in self._relations.items():
            if len(set(attrs)) != len(attrs):
                raise UnsupportedSQLError(
                    f"relation {name!r} declares duplicate attributes"
                )

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    def attributes(self, name: str) -> tuple[str, ...]:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise UnsupportedSQLError(f"unknown relation {name!r}") from None

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def extend(self, extra: Mapping[str, Iterable[str]]) -> "Schema":
        """A new schema with additional (view) relations."""
        merged: dict[str, Iterable[str]] = dict(self._relations)
        merged.update(extra)
        return Schema(merged)

    def __repr__(self) -> str:
        return f"Schema({sorted(self._relations)})"
