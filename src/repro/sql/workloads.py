"""Representative SQL workloads in the supported dialect.

The paper extracts hypergraphs from TPC-H, TPC-DS, JOB (IMDB) and SQLShare;
those query texts are not redistributable here, so this module ships
schema-faithful *representative* workloads written in the same dialect the
pipeline handles: multi-way foreign-key joins, views, nested IN/EXISTS
subqueries and set operations.  Examples and tests run the Section 5
pipeline on them end to end.
"""

from __future__ import annotations

from repro.sql.schema import Schema

__all__ = ["TPCH_LIKE_SCHEMA", "TPCH_LIKE_QUERIES", "JOB_LIKE_SCHEMA", "JOB_LIKE_QUERIES"]

#: A TPC-H-shaped schema (names shortened to the join-relevant attributes).
TPCH_LIKE_SCHEMA = Schema(
    {
        "region": ["r_regionkey", "r_name"],
        "nation": ["n_nationkey", "n_regionkey", "n_name"],
        "supplier": ["s_suppkey", "s_nationkey", "s_name"],
        "customer": ["c_custkey", "c_nationkey", "c_name"],
        "orders": ["o_orderkey", "o_custkey", "o_orderdate"],
        "lineitem": ["l_orderkey", "l_partkey", "l_suppkey", "l_quantity"],
        "part": ["p_partkey", "p_name", "p_type"],
        "partsupp": ["ps_partkey", "ps_suppkey", "ps_supplycost"],
    }
)

#: Queries shaped like the TPC-H workload (joins along foreign keys, nested
#: subqueries, one view-based query).
TPCH_LIKE_QUERIES = [
    # Q-like 3: customer/orders/lineitem join
    """
    SELECT c.c_name, o.o_orderkey
    FROM customer c, orders o, lineitem l
    WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
      AND o.o_orderdate < '1995-03-15';
    """,
    # Q-like 5: six-way join through nation/region
    """
    SELECT n.n_name
    FROM customer c, orders o, lineitem l, supplier s, nation n, region r
    WHERE c.c_custkey = o.o_custkey
      AND l.l_orderkey = o.o_orderkey
      AND l.l_suppkey = s.s_suppkey
      AND c.c_nationkey = s.s_nationkey
      AND s.s_nationkey = n.n_nationkey
      AND n.n_regionkey = r.r_regionkey
      AND r.r_name = 'ASIA';
    """,
    # Q-like 2 fragment: part/partsupp/supplier with an uncorrelated subquery
    """
    SELECT s.s_name
    FROM part p, partsupp ps, supplier s, nation n
    WHERE p.p_partkey = ps.ps_partkey
      AND s.s_suppkey = ps.ps_suppkey
      AND s.s_nationkey = n.n_nationkey
      AND p.p_partkey IN (SELECT part.p_partkey FROM part WHERE part.p_type = 'BRASS');
    """,
    # View-based query (Listing 3 style)
    """
    WITH supplied AS (
      SELECT ps.ps_partkey pk, s.s_nationkey nk
      FROM partsupp ps, supplier s
      WHERE ps.ps_suppkey = s.s_suppkey
    )
    SELECT p.p_name
    FROM part p, supplied sp, nation n
    WHERE p.p_partkey = sp.pk AND sp.nk = n.n_nationkey;
    """,
    # Correlated EXISTS — the subquery is eliminated, the core survives
    """
    SELECT c.c_name
    FROM customer c, nation n
    WHERE c.c_nationkey = n.n_nationkey
      AND EXISTS (SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey);
    """,
    # Set operation — each branch is extracted separately
    """
    SELECT c.c_custkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey
    UNION
    SELECT s.s_suppkey FROM supplier s, partsupp ps WHERE s.s_suppkey = ps.ps_suppkey;
    """,
]

#: A JOB-shaped (IMDB) schema.
JOB_LIKE_SCHEMA = Schema(
    {
        "title": ["t_id", "t_kind_id", "t_title"],
        "movie_companies": ["mc_movie_id", "mc_company_id", "mc_note"],
        "company_name": ["cn_id", "cn_name", "cn_country"],
        "cast_info": ["ci_movie_id", "ci_person_id", "ci_role_id"],
        "name": ["n_id", "n_name"],
        "movie_keyword": ["mk_movie_id", "mk_keyword_id"],
        "keyword": ["k_id", "k_keyword"],
        "movie_info": ["mi_movie_id", "mi_info_type_id", "mi_info"],
    }
)

#: Queries shaped like the Join Order Benchmark (star joins around title,
#: occasionally cyclic through shared foreign keys).
JOB_LIKE_QUERIES = [
    """
    SELECT t.t_title
    FROM title t, movie_companies mc, company_name cn
    WHERE t.t_id = mc.mc_movie_id AND mc.mc_company_id = cn.cn_id
      AND cn.cn_country = 'US';
    """,
    """
    SELECT n.n_name, t.t_title
    FROM title t, cast_info ci, name n, movie_keyword mk, keyword k
    WHERE t.t_id = ci.ci_movie_id
      AND ci.ci_person_id = n.n_id
      AND t.t_id = mk.mk_movie_id
      AND mk.mk_keyword_id = k.k_id
      AND k.k_keyword = 'noir';
    """,
    """
    SELECT t.t_title
    FROM title t, movie_companies mc, movie_info mi, movie_keyword mk
    WHERE t.t_id = mc.mc_movie_id
      AND t.t_id = mi.mi_movie_id
      AND t.t_id = mk.mk_movie_id
      AND mc.mc_note LIKE '%(co-production)%';
    """,
]
