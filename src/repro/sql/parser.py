"""Recursive-descent parser for the supported SQL dialect.

Handles the constructs the paper's pipeline must process (Listings 1–3):
``WITH`` views, nested subqueries in ``FROM`` / ``IN`` / ``EXISTS``, set
operations, conjunctive and disjunctive WHERE clauses, and the usual
comparison operators.  ``GROUP BY`` / ``ORDER BY`` / ``HAVING`` / ``LIMIT``
tails are parsed and ignored — they never influence the query's hypergraph.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    ExistsCondition,
    InCondition,
    Literal,
    NotCondition,
    SelectItem,
    SelectQuery,
    SetOperation,
    SubquerySource,
    TableRef,
)
from repro.sql.tokens import Token, tokenize

__all__ = ["parse_sql"]

_SET_OPS = ("UNION", "INTERSECT", "EXCEPT")
_COMPARISON_OPS = ("=", "<>", "!=", "<", ">", "<=", ">=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0
        # JOIN ... ON conditions collected while parsing FROM; merged into
        # the WHERE tree of the SELECT under construction.
        self._pending_joins: list[object] = []

    # -------------------------------------------------------------- plumbing

    def peek(self, offset: int = 0) -> Token | None:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of SQL input")
        self.position += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token is not None and token.matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"expected {value or kind}, found end of input")
        if not token.matches(kind, value):
            raise ParseError(
                f"expected {value or kind}, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    # --------------------------------------------------------------- queries

    def parse_statement(self) -> SelectQuery | SetOperation:
        views: dict[str, SelectQuery | SetOperation] = {}
        if self.accept("KEYWORD", "WITH"):
            while True:
                name = self.expect("NAME").value
                self.expect("KEYWORD", "AS")
                self.expect("PUNCT", "(")
                views[name] = self.parse_query()
                self.expect("PUNCT", ")")
                if not self.accept("PUNCT", ","):
                    break
        query = self.parse_query()
        self.accept("PUNCT", ";")
        trailing = self.peek()
        if trailing is not None:
            raise ParseError(
                f"trailing input after query: {trailing.value!r}",
                line=trailing.line,
                column=trailing.column,
            )
        if views:
            if isinstance(query, SelectQuery):
                query.views.update(views)
            else:
                for branch in query.branches():
                    branch.views.update(views)
        return query

    def parse_query(self) -> SelectQuery | SetOperation:
        left = self.parse_select_or_parens()
        while True:
            token = self.peek()
            if token is None or not token.matches("KEYWORD") or token.value not in _SET_OPS:
                break
            op = self.advance().value
            self.accept("KEYWORD", "ALL")
            right = self.parse_select_or_parens()
            left = SetOperation(op, left, right)
        return left

    def parse_select_or_parens(self) -> SelectQuery | SetOperation:
        if self.accept("PUNCT", "("):
            inner = self.parse_query()
            self.expect("PUNCT", ")")
            return inner
        return self.parse_select()

    def parse_select(self) -> SelectQuery:
        # Each SELECT block collects its own JOIN..ON conditions; save the
        # enclosing block's list so nested subqueries cannot steal it.
        outer_pending = self._pending_joins
        self._pending_joins = []
        try:
            return self._parse_select_body()
        finally:
            self._pending_joins = outer_pending

    def _parse_select_body(self) -> SelectQuery:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        self.accept("KEYWORD", "ALL")
        select_items = [self.parse_select_item()]
        while self.accept("PUNCT", ","):
            select_items.append(self.parse_select_item())
        self.expect("KEYWORD", "FROM")
        sources: list[TableRef | SubquerySource] = [self.parse_source()]
        while self.accept("PUNCT", ","):
            sources.append(self.parse_source())
        while self.accept("KEYWORD", "JOIN") or (
            self.accept("KEYWORD", "INNER") and self.expect("KEYWORD", "JOIN")
        ):
            # INNER JOIN ... ON cond is normalised to a cross source plus a
            # WHERE conjunct below.
            sources.append(self.parse_source())
            self.expect("KEYWORD", "ON")
            join_condition = self.parse_condition()
            self._pending_joins.append(join_condition)
        where = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.parse_condition()
        where = self._merge_pending_joins(where)
        self._skip_tail()
        return SelectQuery(select_items, sources, where, distinct=distinct)

    def _merge_pending_joins(self, where: object | None) -> object | None:
        pending, self._pending_joins = self._pending_joins, []
        if not pending:
            return where
        operands = list(pending)
        if where is not None:
            operands.append(where)
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("AND", operands)

    def _skip_tail(self) -> None:
        """Skip GROUP BY / HAVING / ORDER BY / LIMIT — structure-irrelevant."""
        while True:
            token = self.peek()
            if token is None or not token.matches("KEYWORD"):
                return
            if token.value in ("GROUP", "ORDER"):
                self.advance()
                self.expect("KEYWORD", "BY")
                self._skip_expression_list()
            elif token.value == "HAVING":
                self.advance()
                self.parse_condition()
            elif token.value == "LIMIT":
                self.advance()
                self.expect("NUMBER")
            else:
                return

    def _skip_expression_list(self) -> None:
        depth = 0
        while True:
            token = self.peek()
            if token is None:
                return
            if token.matches("PUNCT", "("):
                depth += 1
            elif token.matches("PUNCT", ")"):
                if depth == 0:
                    return
                depth -= 1
            elif depth == 0 and token.matches("KEYWORD") and token.value in (
                "GROUP", "ORDER", "HAVING", "LIMIT", "ASC", "DESC",
            ):
                if token.value in ("ASC", "DESC"):
                    self.advance()
                    continue
                return
            elif depth == 0 and (
                token.matches("PUNCT", ";")
                or (token.matches("KEYWORD") and token.value in _SET_OPS)
            ):
                return
            elif depth == 0 and token.matches("PUNCT", ","):
                pass
            self.advance()

    # ------------------------------------------------------------ components

    def parse_select_item(self) -> SelectItem:
        if self.accept("PUNCT", "*"):
            return SelectItem(expr=None)
        token = self.peek()
        if token is not None and token.matches("NAME"):
            after = self.peek(1)
            two_after = self.peek(2)
            if (
                after is not None
                and after.matches("PUNCT", ".")
                and two_after is not None
                and two_after.matches("PUNCT", "*")
            ):
                table = self.advance().value
                self.advance()
                self.advance()
                return SelectItem(expr=None, star_table=table)
        expr = self.parse_value()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("NAME").value
        else:
            alias_token = self.accept("NAME")
            if alias_token is not None:
                alias = alias_token.value
        return SelectItem(expr=expr, alias=alias)

    def parse_source(self) -> TableRef | SubquerySource:
        if self.accept("PUNCT", "("):
            query = self.parse_query()
            self.expect("PUNCT", ")")
            self.accept("KEYWORD", "AS")
            alias = self.expect("NAME").value
            return SubquerySource(query, alias)
        name = self.expect("NAME").value
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("NAME").value
        else:
            alias_token = self.accept("NAME")
            if alias_token is not None:
                alias = alias_token.value
        return TableRef(name, alias)

    def parse_value(self) -> ColumnRef | Literal:
        token = self.advance()
        if token.matches("NUMBER"):
            return Literal(token.value, "number")
        if token.matches("STRING"):
            return Literal(token.value, "string")
        if token.matches("KEYWORD", "NULL"):
            return Literal("NULL", "null")
        if token.matches("NAME"):
            next_token = self.peek()
            if next_token is not None and next_token.matches("PUNCT", "("):
                # A function call (SUM(x), COUNT(*), SUBSTR(a, 1, 3)...):
                # aggregates and scalar expressions carry no join structure,
                # so the call is skipped and an opaque expression returned.
                self._skip_balanced_parens()
                return Literal(f"{token.value}(...)", "expr")
            if self.accept("PUNCT", "."):
                column = self.expect("NAME").value
                return ColumnRef(token.value, column)
            return ColumnRef(None, token.value)
        raise ParseError(
            f"expected a value, found {token.value!r}",
            line=token.line,
            column=token.column,
        )

    def _skip_balanced_parens(self) -> None:
        """Consume '(' ... ')' with arbitrary nesting (function arguments)."""
        self.expect("PUNCT", "(")
        depth = 1
        while depth:
            token = self.advance()
            if token.matches("PUNCT", "("):
                depth += 1
            elif token.matches("PUNCT", ")"):
                depth -= 1

    # ------------------------------------------------------------ conditions

    def parse_condition(self) -> object:
        return self.parse_or()

    def parse_or(self) -> object:
        operands = [self.parse_and()]
        while self.accept("KEYWORD", "OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("OR", operands)

    def parse_and(self) -> object:
        operands = [self.parse_not()]
        while self.accept("KEYWORD", "AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("AND", operands)

    def parse_not(self) -> object:
        if self.accept("KEYWORD", "NOT"):
            return self._negate(self.parse_not())
        return self.parse_primary_condition()

    @staticmethod
    def _negate(condition: object) -> object:
        if isinstance(condition, ExistsCondition):
            return ExistsCondition(condition.subquery, negated=not condition.negated)
        if isinstance(condition, InCondition):
            return InCondition(
                condition.column,
                condition.subquery,
                condition.values,
                negated=not condition.negated,
            )
        return NotCondition(condition)

    def parse_primary_condition(self) -> object:
        if self.accept("KEYWORD", "EXISTS"):
            self.expect("PUNCT", "(")
            subquery = self.parse_query()
            self.expect("PUNCT", ")")
            return ExistsCondition(subquery)
        if self.peek() is not None and self.peek().matches("PUNCT", "("):
            # Either a parenthesised condition or a row-value — only the
            # former occurs in this dialect.
            self.advance()
            inner = self.parse_condition()
            self.expect("PUNCT", ")")
            return inner

        left = self.parse_value()

        if self.accept("KEYWORD", "IS"):
            negated = bool(self.accept("KEYWORD", "NOT"))
            self.expect("KEYWORD", "NULL")
            comparison = Comparison(left, "=", Literal("NULL", "null"))
            return NotCondition(comparison) if negated else comparison

        negated = bool(self.accept("KEYWORD", "NOT"))
        if self.accept("KEYWORD", "IN"):
            if not isinstance(left, ColumnRef):
                raise ParseError("IN requires a column on its left-hand side")
            self.expect("PUNCT", "(")
            token = self.peek()
            if token is not None and (
                token.matches("KEYWORD", "SELECT")
                or token.matches("KEYWORD", "WITH")
                or token.matches("PUNCT", "(")
            ):
                subquery = self.parse_query()
                self.expect("PUNCT", ")")
                return InCondition(left, subquery, negated=negated)
            values = [self._parse_literal()]
            while self.accept("PUNCT", ","):
                values.append(self._parse_literal())
            self.expect("PUNCT", ")")
            return InCondition(left, None, tuple(values), negated=negated)
        if self.accept("KEYWORD", "LIKE"):
            pattern = self._parse_literal()
            comparison = Comparison(left, "LIKE", pattern)
            return NotCondition(comparison) if negated else comparison
        if self.accept("KEYWORD", "BETWEEN"):
            low = self.parse_value()
            self.expect("KEYWORD", "AND")
            high = self.parse_value()
            comparison = BooleanOp(
                "AND", [Comparison(left, ">=", low), Comparison(left, "<=", high)]
            )
            return NotCondition(comparison) if negated else comparison
        if negated:
            raise ParseError("NOT must be followed by IN, LIKE or BETWEEN here")

        op_token = self.peek()
        if op_token is None or not op_token.matches("OP"):
            raise ParseError(
                "expected a comparison operator"
                + (f", found {op_token.value!r}" if op_token else ""),
            )
        op = self.advance().value
        if op not in _COMPARISON_OPS:
            raise ParseError(f"unsupported operator {op!r}")
        right = self.parse_value()
        return Comparison(left, op, right)

    def _parse_literal(self) -> Literal:
        token = self.advance()
        if token.matches("NUMBER"):
            return Literal(token.value, "number")
        if token.matches("STRING"):
            return Literal(token.value, "string")
        raise ParseError(
            f"expected a literal, found {token.value!r}",
            line=token.line,
            column=token.column,
        )


def parse_sql(text: str) -> SelectQuery | SetOperation:
    """Parse one SQL statement of the supported dialect."""
    return _Parser(tokenize(text)).parse_statement()
