"""AST for the supported SQL dialect.

The dialect covers what the paper's pipeline needs (Listings 1–3):
``WITH`` views, ``SELECT``-``FROM``-``WHERE`` blocks with table aliases and
subqueries in ``FROM``, conjunctions/disjunctions of comparisons,
``IN (SELECT ...)`` and ``[NOT] EXISTS (SELECT ...)`` conditions, and the set
operations ``UNION`` / ``INTERSECT`` / ``EXCEPT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ColumnRef",
    "Literal",
    "SelectItem",
    "TableRef",
    "SubquerySource",
    "Comparison",
    "InCondition",
    "ExistsCondition",
    "BooleanOp",
    "NotCondition",
    "SelectQuery",
    "SetOperation",
]


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference ``t1.a`` or ``a``."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A constant: number or string."""

    value: str
    kind: str  # "number" | "string" | "null"

    def __str__(self) -> str:
        return f"'{self.value}'" if self.kind == "string" else self.value


@dataclass(frozen=True)
class SelectItem:
    """One projection item: ``expr [AS alias]`` or ``*`` / ``t.*``."""

    expr: ColumnRef | Literal | None  # None means '*'
    alias: str | None = None
    star_table: str | None = None  # for 't.*'

    @property
    def is_star(self) -> bool:
        return self.expr is None


@dataclass(frozen=True)
class TableRef:
    """A base table (or view name) in FROM: ``tab [AS] t1``."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubquerySource:
    """A derived table in FROM: ``(SELECT ...) alias``."""

    query: "SelectQuery | SetOperation"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Comparison:
    """``left op right`` with op in {=, <>, !=, <, >, <=, >=, LIKE}."""

    left: ColumnRef | Literal
    op: str
    right: ColumnRef | Literal

    @property
    def is_equality(self) -> bool:
        return self.op == "="


@dataclass
class InCondition:
    """``column [NOT] IN (SELECT ...)`` or ``column [NOT] IN (v1, v2, ...)``."""

    column: ColumnRef
    subquery: "SelectQuery | SetOperation | None"
    values: tuple[Literal, ...] = ()
    negated: bool = False


@dataclass
class ExistsCondition:
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectQuery | SetOperation"
    negated: bool = False


@dataclass
class BooleanOp:
    """``AND`` / ``OR`` over conditions."""

    op: str  # "AND" | "OR"
    operands: list[object] = field(default_factory=list)


@dataclass
class NotCondition:
    """``NOT condition``."""

    operand: object


@dataclass
class SelectQuery:
    """One SELECT-FROM-WHERE block, optionally preceded by WITH views.

    ``views`` maps view name → definition for views introduced by a WITH
    clause attached to this query.
    """

    select: list[SelectItem]
    sources: list[TableRef | SubquerySource]
    where: object | None = None  # condition tree
    views: dict[str, "SelectQuery | SetOperation"] = field(default_factory=dict)
    distinct: bool = False

    def table_bindings(self) -> dict[str, str]:
        """Alias/binding → underlying name for base-table sources."""
        return {
            src.binding: src.name
            for src in self.sources
            if isinstance(src, TableRef)
        }


@dataclass
class SetOperation:
    """``left (UNION|INTERSECT|EXCEPT) [ALL] right``."""

    op: str
    left: "SelectQuery | SetOperation"
    right: "SelectQuery | SetOperation"

    def branches(self) -> list[SelectQuery]:
        """Flatten the operation tree into its SELECT leaves."""
        result: list[SelectQuery] = []
        for side in (self.left, self.right):
            if isinstance(side, SetOperation):
                result.extend(side.branches())
            else:
                result.append(side)
        return result
