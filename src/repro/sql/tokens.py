"""Tokenizer for the supported SQL dialect.

Produces a flat token stream of keywords, identifiers, literals, operators
and punctuation.  Keywords are case-insensitive and normalised to upper case;
identifiers keep their original spelling (lower-cased, as the dialect is
case-insensitive and unquoted).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "EXISTS", "AS",
    "UNION", "INTERSECT", "EXCEPT", "WITH", "ALL", "DISTINCT", "ON", "JOIN",
    "INNER", "BETWEEN", "LIKE", "IS", "NULL", "GROUP", "BY", "ORDER",
    "HAVING", "LIMIT", "ASC", "DESC",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),.;*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  # KEYWORD, NAME, NUMBER, STRING, OP, PUNCT
    value: str
    line: int
    column: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on unexpected characters."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(
                f"unexpected character {text[position]!r}", line=line, column=column
            )
        column = position - line_start + 1
        kind = match.lastgroup
        value = match.group()
        if kind not in ("ws", "comment"):
            if kind == "name":
                upper = value.upper()
                if upper in KEYWORDS:
                    tokens.append(Token("KEYWORD", upper, line, column))
                else:
                    tokens.append(Token("NAME", value.lower(), line, column))
            elif kind == "number":
                tokens.append(Token("NUMBER", value, line, column))
            elif kind == "string":
                tokens.append(Token("STRING", value[1:-1].replace("''", "'"), line, column))
            elif kind == "op":
                tokens.append(Token("OP", value, line, column))
            else:
                tokens.append(Token("PUNCT", value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = position + value.rindex("\n") + 1
        position = match.end()
    return tokens
