"""Subquery dependency graphs (Section 5.3, Figure 1).

Given a parsed query, we collect its subqueries (from ``IN`` conditions,
``EXISTS`` conditions and derived tables), create a node per subquery, add an
edge ``(q, s)`` when ``s`` is nested in ``q``, and an edge ``(s, q')`` when
``s`` references a table *bound in an ancestor* ``q'`` (a correlated
subquery).  Nodes involved in cycles — i.e. correlated subqueries, such as
``s2`` of Listing 2 — are eliminated together with their incident edges; the
remaining forest yields one independently analysable query per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    ExistsCondition,
    InCondition,
    NotCondition,
    SelectQuery,
    SetOperation,
    SubquerySource,
    TableRef,
)

__all__ = ["DependencyGraph", "DependencyNode", "build_dependency_graph"]


@dataclass
class DependencyNode:
    """One subquery occurrence in the dependency graph."""

    node_id: int
    query: SelectQuery
    parent: int | None
    label: str
    #: bindings (aliases / table names) introduced by this query's FROM
    bindings: frozenset[str] = frozenset()
    #: free column references of this subquery that resolve in an ancestor
    correlated_with: set[int] = field(default_factory=set)


@dataclass
class DependencyGraph:
    """The dependency graph ``G = (S, D)`` of one SQL statement."""

    nodes: list[DependencyNode]
    edges: set[tuple[int, int]]

    def surviving_queries(self) -> list[DependencyNode]:
        """Nodes that survive cycle elimination, in document order.

        Following Section 5.3: starting from the root, any node with an edge
        pointing at one of its ancestors is removed with all incident edges
        (and, transitively, everything nested below it — those subqueries
        reference context that no longer exists).
        """
        eliminated: set[int] = set()
        for node in self.nodes:
            if node.correlated_with:
                eliminated.add(node.node_id)
        # Transitively eliminate descendants of eliminated nodes.
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                if node.node_id in eliminated:
                    continue
                if node.parent is not None and node.parent in eliminated:
                    eliminated.add(node.node_id)
                    changed = True
        return [n for n in self.nodes if n.node_id not in eliminated]


def _iter_conditions(condition: object):
    """Yield every atomic condition in a condition tree."""
    if condition is None:
        return
    if isinstance(condition, BooleanOp):
        for operand in condition.operands:
            yield from _iter_conditions(operand)
    elif isinstance(condition, NotCondition):
        yield from _iter_conditions(condition.operand)
    else:
        yield condition


def _free_tables(query: SelectQuery) -> set[str]:
    """Table qualifiers referenced in ``query`` but not bound by its FROM.

    Only direct references count here; nested subqueries are handled by their
    own dependency nodes.
    """
    bound = {src.binding for src in query.sources}
    for src in query.sources:
        if isinstance(src, TableRef):
            bound.add(src.name)
    free: set[str] = set()

    def visit_column(ref: ColumnRef) -> None:
        if ref.table is not None and ref.table not in bound:
            free.add(ref.table)

    for item in query.select:
        if isinstance(item.expr, ColumnRef):
            visit_column(item.expr)
    for condition in _iter_conditions(query.where):
        if isinstance(condition, Comparison):
            for side in (condition.left, condition.right):
                if isinstance(side, ColumnRef):
                    visit_column(side)
        elif isinstance(condition, InCondition):
            visit_column(condition.column)
    return free


def _selects_of(query: SelectQuery | SetOperation) -> list[SelectQuery]:
    return query.branches() if isinstance(query, SetOperation) else [query]


def build_dependency_graph(query: SelectQuery | SetOperation) -> DependencyGraph:
    """Build the dependency graph of one parsed SQL statement."""
    nodes: list[DependencyNode] = []
    edges: set[tuple[int, int]] = set()

    def add_node(
        select: SelectQuery, parent: int | None, label: str
    ) -> DependencyNode:
        bindings = frozenset(
            binding
            for src in select.sources
            for binding in (
                (src.binding, src.name) if isinstance(src, TableRef) else (src.binding,)
            )
        )
        node = DependencyNode(len(nodes), select, parent, label, bindings)
        nodes.append(node)
        if parent is not None:
            edges.add((parent, node.node_id))
        return node

    def walk(select: SelectQuery, parent: int | None, label: str) -> None:
        node = add_node(select, parent, label)
        child_index = 0

        def recurse_into(sub: SelectQuery | SetOperation, what: str) -> None:
            nonlocal child_index
            for branch in _selects_of(sub):
                child_index += 1
                walk(branch, node.node_id, f"{label}.{what}{child_index}")

        for view in select.views.values():
            recurse_into(view, "v")
        for src in select.sources:
            if isinstance(src, SubquerySource):
                recurse_into(src.query, "f")
        for condition in _iter_conditions(select.where):
            if isinstance(condition, InCondition) and condition.subquery is not None:
                recurse_into(condition.subquery, "s")
            elif isinstance(condition, ExistsCondition):
                recurse_into(condition.subquery, "s")

    for i, branch in enumerate(_selects_of(query)):
        walk(branch, None, f"q{i}" if i else "q")

    # Correlation edges: a node referencing a binding of an ancestor.
    by_id = {node.node_id: node for node in nodes}
    for node in nodes:
        free = _free_tables(node.query)
        if not free:
            continue
        ancestor = node.parent
        while ancestor is not None:
            ancestor_node = by_id[ancestor]
            if free & ancestor_node.bindings:
                edges.add((node.node_id, ancestor))
                node.correlated_with.add(ancestor)
            ancestor = ancestor_node.parent
    return DependencyGraph(nodes, edges)
