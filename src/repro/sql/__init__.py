"""SQL → hypergraph pipeline (Sections 5.2–5.4 of the paper).

The paper's ``hg-tools`` library turns complex SQL queries into collections
of hypergraphs: it extracts subqueries via a *dependency graph* (dropping the
mutually dependent, i.e. correlated, ones), reduces each remaining query to
its *conjunctive core*, expands logical views, and converts the result into
a hypergraph by merging join attributes and eliminating constants.

Public entry points:

* :func:`parse_sql` — parse one statement of the supported dialect;
* :func:`extract_simple_queries` — the Section 5.3 extraction pipeline;
* :func:`simple_query_to_hypergraph` — the Section 5.4 conversion;
* :func:`sql_to_hypergraphs` — the whole pipeline in one call.
"""

from repro.sql.ast import (
    ColumnRef,
    Comparison,
    ExistsCondition,
    InCondition,
    SelectItem,
    SelectQuery,
    SetOperation,
    TableRef,
)
from repro.sql.convert import simple_query_to_hypergraph, sql_to_hypergraphs
from repro.sql.dependency import DependencyGraph, build_dependency_graph
from repro.sql.extract import SimpleQuery, TableInstance, extract_simple_queries
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema

__all__ = [
    "parse_sql",
    "Schema",
    "SelectQuery",
    "SetOperation",
    "TableRef",
    "SelectItem",
    "ColumnRef",
    "Comparison",
    "InCondition",
    "ExistsCondition",
    "DependencyGraph",
    "build_dependency_graph",
    "SimpleQuery",
    "TableInstance",
    "extract_simple_queries",
    "simple_query_to_hypergraph",
    "sql_to_hypergraphs",
]
