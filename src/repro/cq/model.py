"""The conjunctive query model.

A CQ is treated as a first-order formula using only {∃, ∧} (Section 3.1):
a set of relational atoms over variables and constants, plus a head listing
the answer variables.  Only the *structure* matters for decompositions, but
the model keeps constants so the relational engine can evaluate queries.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class Atom:
    """One relational atom ``relation(term_1, ..., term_n)``.

    Terms starting with an upper-case letter or ``_`` are variables (datalog
    convention); everything else — including quoted or numeric terms — is a
    constant.
    """

    relation: str
    terms: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[str, ...]:
        """The distinct variables of the atom, in order of first occurrence."""
        seen: list[str] = []
        for term in self.terms:
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.terms)})"


def is_variable(term: str) -> bool:
    """Datalog convention: variables start with an upper-case letter or '_'."""
    return bool(term) and (term[0].isupper() or term[0] == "_")


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``head(X, ...) :- atom_1, ..., atom_m``."""

    head: tuple[str, ...]
    atoms: tuple[Atom, ...]
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "atoms", tuple(self.atoms))

    def variables(self) -> tuple[str, ...]:
        """All distinct variables, in order of first occurrence in the body."""
        seen: list[str] = []
        for atom in self.atoms:
            for v in atom.variables():
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    @property
    def arity(self) -> int:
        """Maximum atom arity — the paper's notion of the arity of a CQ."""
        return max((a.arity for a in self.atoms), default=0)

    def is_boolean(self) -> bool:
        return not self.head

    def __str__(self) -> str:
        head = f"ans({', '.join(self.head)})"
        body = ", ".join(str(a) for a in self.atoms)
        return f"{head} :- {body}."


def make_query(
    atoms: Iterable[tuple[str, Sequence[str]]],
    head: Sequence[str] = (),
    name: str = "",
) -> ConjunctiveQuery:
    """Convenience constructor from ``(relation, terms)`` pairs."""
    return ConjunctiveQuery(
        head=tuple(head),
        atoms=tuple(Atom(rel, tuple(terms)) for rel, terms in atoms),
        name=name,
    )
