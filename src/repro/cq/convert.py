"""CQ → hypergraph conversion (Section 3.1).

The hypergraph ``H_φ`` of a CQ φ has the query variables as vertices and,
for each atom, the edge consisting of the atom's variables.  Constants do not
produce vertices; atoms whose variable sets are empty produce no edge (they
cannot affect any width).  Repeated atoms over the same variable set are
deduplicated on the hypergraph level, as in the paper's pipeline.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph
from repro.cq.model import ConjunctiveQuery

__all__ = ["cq_to_hypergraph"]


def cq_to_hypergraph(query: ConjunctiveQuery, dedupe: bool = True) -> Hypergraph:
    """The hypergraph underlying a conjunctive query.

    Edge names are ``{relation}#{i}`` with the atom's position, which keeps
    them unique for self-joins while staying readable.
    """
    edges: dict[str, frozenset[str]] = {}
    for i, atom in enumerate(query.atoms):
        variables = frozenset(atom.variables())
        if not variables:
            continue
        edges[f"{atom.relation}#{i}"] = variables
    h = Hypergraph(edges, name=query.name)
    if dedupe:
        h = h.dedupe()
    return h
