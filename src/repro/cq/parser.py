"""A datalog-style parser for conjunctive queries.

Grammar (whitespace-insensitive)::

    query  :=  head ":-" body "."?
    head   :=  name "(" terms? ")"
    body   :=  atom ("," atom)*
    atom   :=  name "(" terms ")"
    terms  :=  term ("," term)*
    term   :=  /[A-Za-z0-9_.'\"-]+/

Variables follow the datalog convention (leading upper-case or ``_``);
all other terms are constants.
"""

from __future__ import annotations

import re

from repro.cq.model import Atom, ConjunctiveQuery
from repro.errors import ParseError

__all__ = ["parse_cq"]

_ATOM_RE = re.compile(
    r"\s*([A-Za-z0-9_.\-]+)\s*\(\s*([^()]*)\s*\)\s*"
)


def _parse_atom(text: str, what: str) -> tuple[str, tuple[str, ...]]:
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise ParseError(f"malformed {what}: {text.strip()!r}")
    name = match.group(1)
    raw_terms = match.group(2).strip()
    if not raw_terms:
        return name, ()
    terms = tuple(t.strip().strip("'\"") for t in raw_terms.split(","))
    if any(not t for t in terms):
        raise ParseError(f"empty term in {what}: {text.strip()!r}")
    return name, terms


def _split_atoms(body: str) -> list[str]:
    """Split the body on commas that are not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced parentheses in query body")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ParseError("unbalanced parentheses in query body")
    parts.append("".join(current))
    return parts


def parse_cq(text: str, name: str = "") -> ConjunctiveQuery:
    """Parse ``ans(X, Y) :- r(X, Z), s(Z, Y).`` into a :class:`ConjunctiveQuery`."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    if ":-" not in text:
        raise ParseError("a conjunctive query needs a ':-' separator")
    head_text, body_text = text.split(":-", 1)
    _, head_terms = _parse_atom(head_text, "head")
    body_text = body_text.strip()
    if not body_text:
        raise ParseError("conjunctive query has an empty body")
    atoms = []
    for part in _split_atoms(body_text):
        if not part.strip():
            raise ParseError("empty atom in query body")
        relation, terms = _parse_atom(part, "atom")
        if not terms:
            raise ParseError(f"atom {relation!r} has no terms")
        atoms.append(Atom(relation, terms))
    return ConjunctiveQuery(head=head_terms, atoms=tuple(atoms), name=name)
