"""Conjunctive queries: model, datalog-style parser, hypergraph conversion."""

from repro.cq.model import Atom, ConjunctiveQuery
from repro.cq.parser import parse_cq
from repro.cq.convert import cq_to_hypergraph

__all__ = ["Atom", "ConjunctiveQuery", "parse_cq", "cq_to_hypergraph"]
