"""JSON import/export for hypergraphs and decompositions.

The HyperBench web tool serves hypergraphs plus their analysis results; the
static report generator (:mod:`repro.benchmark.report`) and the test suite use
these converters.
"""

from __future__ import annotations

import json

from repro.core.decomposition import Decomposition
from repro.core.hypergraph import Hypergraph
from repro.errors import ParseError

__all__ = ["hypergraph_to_json", "hypergraph_from_json", "decomposition_to_json"]


def hypergraph_to_json(hypergraph: Hypergraph, indent: int | None = None) -> str:
    """Serialise a hypergraph to a JSON document."""
    payload = {
        "name": hypergraph.name,
        "edges": {name: sorted(vs) for name, vs in hypergraph.edges.items()},
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def hypergraph_from_json(text: str) -> Hypergraph:
    """Parse a hypergraph from the JSON document format of :func:`hypergraph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "edges" not in payload:
        raise ParseError("JSON hypergraph must be an object with an 'edges' key")
    edges = payload["edges"]
    if not isinstance(edges, dict):
        raise ParseError("'edges' must map edge names to vertex lists")
    return Hypergraph(edges, name=str(payload.get("name", "")))


def decomposition_to_json(decomposition: Decomposition, indent: int | None = None) -> str:
    """Serialise a decomposition (tree, bags, covers) to JSON."""
    return json.dumps(decomposition.to_dict(), indent=indent, sort_keys=True)
