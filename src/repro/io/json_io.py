"""JSON import/export for hypergraphs and decompositions.

The HyperBench web tool serves hypergraphs plus their analysis results; the
static report generator (:mod:`repro.benchmark.report`) and the test suite use
these converters.
"""

from __future__ import annotations

import json

from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.errors import ParseError

__all__ = [
    "hypergraph_to_json",
    "hypergraph_from_json",
    "decomposition_to_json",
    "decomposition_from_dict",
    "decomposition_from_json",
]


def hypergraph_to_json(hypergraph: Hypergraph, indent: int | None = None) -> str:
    """Serialise a hypergraph to a JSON document."""
    payload = {
        "name": hypergraph.name,
        "edges": {name: sorted(vs) for name, vs in hypergraph.edges.items()},
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def hypergraph_from_json(text: str) -> Hypergraph:
    """Parse a hypergraph from the JSON document format of :func:`hypergraph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "edges" not in payload:
        raise ParseError("JSON hypergraph must be an object with an 'edges' key")
    edges = payload["edges"]
    if not isinstance(edges, dict):
        raise ParseError("'edges' must map edge names to vertex lists")
    return Hypergraph(edges, name=str(payload.get("name", "")))


def decomposition_to_json(decomposition: Decomposition, indent: int | None = None) -> str:
    """Serialise a decomposition (tree, bags, covers) to JSON."""
    return json.dumps(decomposition.to_dict(), indent=indent, sort_keys=True)


def decomposition_from_dict(payload: dict, hypergraph: Hypergraph) -> Decomposition:
    """Rebuild a decomposition from :meth:`Decomposition.to_dict` output.

    The serialised form refers to edges by name only, so the decomposed
    ``hypergraph`` must be supplied (the engine's result store guarantees
    this by keying results on the hypergraph's content fingerprint).
    """
    if not isinstance(payload, dict) or "root" not in payload:
        raise ParseError("JSON decomposition must be an object with a 'root' key")

    def parse_node(node_payload: object) -> DecompositionNode:
        if not isinstance(node_payload, dict):
            raise ParseError("decomposition nodes must be JSON objects")
        try:
            bag = node_payload["bag"]
            cover = node_payload["cover"]
        except KeyError as exc:
            raise ParseError(f"decomposition node lacks {exc} key") from None
        children = [parse_node(c) for c in node_payload.get("children", [])]
        try:
            return DecompositionNode(
                frozenset(str(v) for v in bag),
                {str(name): float(weight) for name, weight in cover.items()},
                children,
            )
        except (AttributeError, TypeError, ValueError) as exc:
            raise ParseError(f"malformed decomposition node: {exc}") from exc

    kind = str(payload.get("kind", "GHD"))
    if kind not in Decomposition.KINDS:
        raise ParseError(f"unknown decomposition kind {kind!r}")
    return Decomposition(hypergraph, parse_node(payload["root"]), kind=kind)


def decomposition_from_json(text: str, hypergraph: Hypergraph) -> Decomposition:
    """Parse the JSON document format of :func:`decomposition_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    return decomposition_from_dict(payload, hypergraph)
