"""Serialisation: the DBAI hypergraph text format and JSON export."""

from repro.io.hg_format import (
    parse_hypergraph,
    read_hypergraph,
    write_hypergraph,
    format_hypergraph,
)
from repro.io.json_io import decomposition_to_json, hypergraph_from_json, hypergraph_to_json

__all__ = [
    "parse_hypergraph",
    "read_hypergraph",
    "write_hypergraph",
    "format_hypergraph",
    "hypergraph_to_json",
    "hypergraph_from_json",
    "decomposition_to_json",
]
