"""The DBAI / detkdecomp hypergraph text format.

HyperBench distributes hypergraphs in the format the original ``DetKDecomp``
program consumes: one edge per statement, written ``name(v1,v2,...)``,
statements separated by commas and the file terminated by a full stop, e.g.::

    % a triangle
    r(x,y),
    s(y,z),
    t(z,x).

``%``-comments run to the end of the line.  Vertex and edge names may contain
letters, digits, underscores, colons and dashes.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.errors import ParseError

__all__ = [
    "parse_hypergraph",
    "read_hypergraph",
    "format_hypergraph",
    "write_hypergraph",
]

_NAME = r"[A-Za-z0-9_:\-.]+"
_EDGE_RE = re.compile(rf"({_NAME})\s*\(\s*({_NAME}(?:\s*,\s*{_NAME})*)\s*\)")


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("%", 1)[0] for line in text.splitlines())


def parse_hypergraph(text: str, name: str = "") -> Hypergraph:
    """Parse a hypergraph from the detkdecomp text format.

    Raises :class:`~repro.errors.ParseError` on malformed input.
    """
    body = _strip_comments(text).strip()
    if not body:
        raise ParseError("empty hypergraph file")
    if body.endswith("."):
        body = body[:-1]
    edges: dict[str, list[str]] = {}
    position = 0
    while position < len(body):
        match = _EDGE_RE.match(body, position)
        if match is None:
            snippet = body[position : position + 30].strip()
            line = body.count("\n", 0, position) + 1
            raise ParseError(f"expected an edge, found {snippet!r}", line=line)
        edge_name, vertex_list = match.group(1), match.group(2)
        if edge_name in edges:
            raise ParseError(f"duplicate edge name {edge_name!r}")
        edges[edge_name] = [v.strip() for v in vertex_list.split(",")]
        position = match.end()
        rest = body[position:].lstrip()
        if rest.startswith(","):
            position = body.index(",", position) + 1
        elif rest:
            line = body.count("\n", 0, position) + 1
            raise ParseError("expected ',' or '.' between edges", line=line)
        else:
            position = len(body)
        while position < len(body) and body[position].isspace():
            position += 1
    return Hypergraph(edges, name=name)


def read_hypergraph(path: str | Path) -> Hypergraph:
    """Read a hypergraph file; the instance name defaults to the file stem."""
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        return parse_hypergraph(handle.read(), name=path.stem)


def format_hypergraph(hypergraph: Hypergraph) -> str:
    """Render a hypergraph in the detkdecomp text format."""
    lines = []
    names = list(hypergraph.edge_names)
    for i, edge_name in enumerate(names):
        vertices = ",".join(sorted(hypergraph.edge(edge_name)))
        terminator = "." if i == len(names) - 1 else ","
        lines.append(f"{edge_name}({vertices}){terminator}")
    return "\n".join(lines) + "\n"


def write_hypergraph(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write a hypergraph file in the detkdecomp text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_hypergraph(hypergraph))
